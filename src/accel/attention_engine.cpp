#include "accel/attention_engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace kelle {
namespace accel {

float
quantizeVectorI8(std::span<const float> x, std::span<std::int8_t> out)
{
    KELLE_ASSERT(x.size() == out.size(), "quantize size mismatch");
    float max_abs = 0.0f;
    for (float v : x)
        max_abs = std::max(max_abs, std::fabs(v));
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    for (std::size_t i = 0; i < x.size(); ++i) {
        out[i] = static_cast<std::int8_t>(std::clamp(
            std::nearbyint(x[i] / scale), -127.0f, 127.0f));
    }
    return scale;
}

AttentionEngine::AttentionEngine(std::size_t array_dim)
    : rsa_(array_dim, array_dim)
{}

AttentionResult
AttentionEngine::run(const tensor::Matrix &k, const tensor::Matrix &v,
                     std::span<const float> q,
                     std::span<const float> importance,
                     std::span<const std::uint8_t> protected_slots)
{
    const std::size_t n = k.rows();
    const std::size_t hd = k.cols();
    KELLE_ASSERT(v.rows() == n && v.cols() == hd && q.size() == hd,
                 "attention shape mismatch");
    KELLE_ASSERT(importance.size() == n, "importance size mismatch");
    KELLE_ASSERT(hd <= rsa_.rows(), "head dim exceeds the array");

    AttentionResult res;
    rsa_.resetStats();
    if (n == 0)
        return res;

    // ---- 1. Quantize operands. K rows share one scale so the RSA's
    // integer scores are comparable across tokens (per-row scales
    // would distort the evictor's min search).
    std::vector<std::int8_t> q8(hd);
    const float q_scale = quantizeVectorI8(q, q8);
    std::vector<float> k_flat(k.data(), k.data() + n * hd);
    Int8Matrix k8(n, hd);
    std::vector<std::int8_t> k8_flat(n * hd);
    const float k_scale = quantizeVectorI8(k_flat, k8_flat);
    std::copy(k8_flat.begin(), k8_flat.end(), k8.data.begin());

    // ---- 2. scores = K . q on the RSA, with the evictor tapping the
    // drain. The q vector loads as a single weight column.
    const bool search = !protected_slots.empty();
    SystolicEvictor evictor(n);
    if (search) {
        KELLE_ASSERT(protected_slots.size() == n,
                     "protection mask size mismatch");
        evictor.loadScores(std::vector<float>(importance.begin(),
                                              importance.end()));
        for (std::size_t i = 0; i < n; ++i)
            evictor.setProtected(i, protected_slots[i]);
        evictor.beginPass();
    }
    Int8Matrix qw(hd, 1);
    std::copy(q8.begin(), q8.end(), qw.data.begin());
    rsa_.loadWeights(qw);
    const Int32Matrix raw_scores =
        rsa_.stream(k8, search ? &evictor : nullptr);
    if (search)
        res.victim = evictor.finalize();

    // ---- 3. Dequantize, scale by 1/sqrt(d), Softermax on the SFU.
    const float scale =
        q_scale * k_scale / std::sqrt(static_cast<float>(hd));
    res.probs.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        res.probs[i] = static_cast<float>(raw_scores.at(i, 0)) * scale;
    res.sfuOps += sfu_.softermax(res.probs);

    // ---- 4. y = probs . V on the RSA: probabilities re-quantize to
    // int8 (they are in [0,1]) and V loads tile-wise as weights.
    std::vector<std::int8_t> p8(n);
    const float p_scale = quantizeVectorI8(res.probs, p8);
    std::vector<float> v_flat(v.data(), v.data() + n * hd);
    std::vector<std::int8_t> v8_flat(n * hd);
    const float v_scale = quantizeVectorI8(v_flat, v8_flat);

    res.output.assign(hd, 0.0f);
    // Tile over tokens: each K-tile of up to `rows` tokens loads as a
    // weight block and the matching probability slice streams through.
    for (std::size_t t0 = 0; t0 < n; t0 += rsa_.rows()) {
        const std::size_t tn = std::min(rsa_.rows(), n - t0);
        for (std::size_t c0 = 0; c0 < hd; c0 += rsa_.cols()) {
            const std::size_t cn = std::min(rsa_.cols(), hd - c0);
            Int8Matrix w(tn, cn);
            for (std::size_t i = 0; i < tn; ++i)
                for (std::size_t j = 0; j < cn; ++j)
                    w.at(i, j) = v8_flat[(t0 + i) * hd + c0 + j];
            rsa_.loadWeights(w);
            Int8Matrix pa(1, tn);
            for (std::size_t i = 0; i < tn; ++i)
                pa.at(0, i) = p8[t0 + i];
            const Int32Matrix part = rsa_.stream(pa);
            for (std::size_t j = 0; j < cn; ++j)
                res.output[c0 + j] +=
                    static_cast<float>(part.at(0, j)) * p_scale *
                    v_scale;
        }
    }

    res.cycles = rsa_.stats().cycles;
    res.macs = rsa_.stats().macs;
    return res;
}

} // namespace accel
} // namespace kelle
