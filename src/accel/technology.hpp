/**
 * @file
 * Technology and platform constants of the Kelle accelerator and its
 * baselines (Sections 5 and 8). Every constant cites the table or
 * paragraph it comes from; everything downstream (timing, energy,
 * area) derives from this one struct so experiments can perturb a
 * single knob.
 */

#ifndef KELLE_ACCEL_TECHNOLOGY_HPP
#define KELLE_ACCEL_TECHNOLOGY_HPP

#include <cstddef>

#include "common/units.hpp"
#include "edram/edram_array.hpp"
#include "memory/memory_model.hpp"

namespace kelle {
namespace accel {

/** Compute-array parameters. */
struct RsaConfig
{
    std::size_t rows = 32; ///< 32x32 PEs (Section 5)
    std::size_t cols = 32;
    double clockHz = 1e9; ///< 1 GHz (Section 8)
    /**
     * MACs per PE per cycle. The paper reports 4.13 INT8 TOPs for the
     * 32x32 array at 1 GHz, which implies a double-pumped 8-bit MAC
     * datapath (2 MACs/PE/cycle ~ 4.1 TOPS at 2 ops/MAC).
     */
    double macsPerPeCycle = 2.0;
    /**
     * 8-bit MAC energy at 45 nm synthesis; 0.25 pJ/MAC including local
     * registers and clocking is the NanGate-class figure consistent
     * with the paper's 17% RSA share of 6.52 W on-chip power.
     */
    Energy macEnergy = Energy::picos(0.25);
    /** Area of the PE array + evictor + control (23% of 9.5 mm^2). */
    Area area = Area::mm2(2.19);
    /** Sustained utilization of the array on decode GEMV/GEMM work. */
    double utilization = 0.75;

    double peakMacsPerSec() const
    {
        return static_cast<double>(rows * cols) * clockHz *
               macsPerPeCycle;
    }
    /** INT8 TOPS at 2 ops per MAC (the paper's 4.13 TOPs metric). */
    double
    peakInt8Tops() const
    {
        return 2.0 * peakMacsPerSec() / 1e12;
    }
};

/** Special function unit (softmax/normalization/activation/embedding). */
struct SfuConfig
{
    /** Energy per scalar nonlinear op (Softermax-style LUT path). */
    Energy opEnergy = Energy::picos(1.2);
    /** Scalar ops per cycle (vector lanes). */
    std::size_t lanes = 32;
    Area area = Area::mm2(0.67); ///< 7% of 9.5 mm^2
};

/** The full platform: compute + memory hierarchy. */
struct TechnologyConfig
{
    RsaConfig rsa;
    SfuConfig sfu;

    /** Weight staging SRAM: 2 MB at 128 GB/s (Sections 5.1, 8). */
    mem::MemoryModel weightSram =
        mem::sram(Bytes::mib(2), Bandwidth::gibPerSec(128));

    /** KV storage: 4 MB eDRAM at 256 GB/s (Section 8), or SRAM in the
     *  SRAM-based systems. Refresh parameters in `kvEdram`. */
    mem::MemoryModel kvMemory =
        mem::edram(Bytes::mib(4), Bandwidth::gibPerSec(256));
    bool kvIsEdram = true;

    /** Activation buffer: 256 KB eDRAM (Section 5.1). */
    mem::MemoryModel actBuffer =
        mem::edram(Bytes::kib(256), Bandwidth::gibPerSec(256));
    bool actIsEdram = true;

    /** Electrical eDRAM parameters shared by the refresh model. */
    edram::EdramArrayConfig kvEdram;

    /** Off-chip LPDDR4. */
    mem::MemoryModel dram = mem::lpddr4();

    /** Weight precision in bits (Section 5: weights quantized to 8). */
    int weightBits = 8;
    /** Activation precision in bits (16 by default). */
    int activationBits = 16;

    /**
     * Fraction of peak DRAM bandwidth the platform sustains on decode
     * traffic. Dedicated streaming accelerators with a DMA'd layout
     * reach ~1.0; GPUs running small-batch GEMV typically sustain
     * 50-60% of peak (used by the Figure 14 comparators).
     */
    double dramEfficiency = 1.0;

    /** Additional always-on platform power (GPU SoC uncore etc.). */
    Power socStaticPower = Power::watts(0);

    Area onChipArea() const;
};

/** The Kelle accelerator as evaluated (Section 8). */
TechnologyConfig kelleTech();

/**
 * The Original+SRAM baseline: iso-area SRAM system with a 24x24 RSA
 * and 4 MB of SRAM (Section 8.1.1), 16 GB DRAM.
 */
TechnologyConfig originalSramTech();

/** Kelle accelerator with SRAM in place of eDRAM (AEP/AERP+SRAM). */
TechnologyConfig kelleSramTech();

/** A 4 MB- or 8 MB-SRAM variant used by the Figure 3 motivation. */
TechnologyConfig sramSystemTech(Bytes sram_capacity,
                                std::size_t rsa_dim = 32);
/** eDRAM system variant for Figure 3 (KV in eDRAM of given size). */
TechnologyConfig edramSystemTech(Bytes edram_capacity);

} // namespace accel
} // namespace kelle

#endif // KELLE_ACCEL_TECHNOLOGY_HPP
