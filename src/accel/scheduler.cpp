#include "accel/scheduler.hpp"

#include <algorithm>

namespace kelle {
namespace accel {

std::string
toString(SchedulerKind k)
{
    return k == SchedulerKind::Baseline ? "baseline" : "kelle";
}

Time
composeStepLatency(SchedulerKind kind, const PhaseTimes &p)
{
    if (kind == SchedulerKind::Baseline) {
        // Figure 12a: every stream and compute phase back to back.
        return p.dram + p.sramW + p.kvMem + p.compute + p.sfu;
    }
    // Figure 12b: DRAM, SRAM and eDRAM streams run in parallel with
    // compute; softmax remains on the critical path between QK^T and
    // the value product.
    const Time streams =
        std::max({p.dram, p.sramW, p.kvMem, p.compute});
    return streams + p.sfu;
}

Time
transientLifetime(SchedulerKind kind, Time t_sram, Time t_edram)
{
    if (kind == SchedulerKind::Baseline) {
        // Eq. 7: L_X = 3 T_S; L_Q = 2 T_S + T_e; L_K = T_S + T_e;
        // L_V = 2 T_e  =>  6 T_S + 4 T_e.
        return 6.0 * t_sram + 4.0 * t_edram;
    }
    // Eq. 8: L_X = 3 T_S; L_Q = T_S + T_e; K/V consumed immediately.
    return 4.0 * t_sram + 1.0 * t_edram;
}

} // namespace accel
} // namespace kelle
