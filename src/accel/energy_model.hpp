/**
 * @file
 * Component-wise energy accounting of a simulated run.
 */

#ifndef KELLE_ACCEL_ENERGY_MODEL_HPP
#define KELLE_ACCEL_ENERGY_MODEL_HPP

#include <string>
#include <vector>

#include "common/units.hpp"

namespace kelle {
namespace accel {

/** Per-component energy of one phase (prefill or decode). */
struct EnergyBreakdown
{
    Energy rsa;        ///< MAC array switching energy
    Energy sfu;        ///< nonlinear ops
    Energy weightSram; ///< weight staging traffic
    Energy kvMem;      ///< on-chip KV traffic (eDRAM or SRAM)
    Energy refresh;    ///< eDRAM refresh (KV-resident + transients)
    Energy dram;       ///< off-chip traffic
    Energy leakage;    ///< on-chip leakage + DRAM background

    Energy total() const;
    EnergyBreakdown &operator+=(const EnergyBreakdown &o);

    /** On-chip share only (the paper's Figure 13 pie charts). */
    Energy onChipTotal() const;

    /** Human-readable component: fraction table. */
    std::vector<std::pair<std::string, double>> shares() const;
};

} // namespace accel
} // namespace kelle

#endif // KELLE_ACCEL_ENERGY_MODEL_HPP
