#include "accel/technology.hpp"

namespace kelle {
namespace accel {

Area
TechnologyConfig::onChipArea() const
{
    return rsa.area + sfu.area + weightSram.area() + kvMemory.area() +
           actBuffer.area();
}

namespace {

/**
 * Steady-state refresh energy used by the analytic system model.
 * Table 1 characterizes a full array rewrite at 1.14 mJ / 4 MiB
 * (~272 pJ/B) including the sense/IO periphery, but a row-granular
 * refresh controller recharges cells without driving the IO path,
 * whose cost our access-energy account already covers. 112 pJ/B is
 * calibrated so the unoptimized 45 us system reproduces Figure 3c's
 * "refresh takes up to 46% of total energy".
 */
const EnergyPerByte kSteadyStateRefresh =
    EnergyPerByte::picojoules(112);

} // namespace

TechnologyConfig
kelleTech()
{
    TechnologyConfig t;
    t.kvEdram.capacity = t.kvMemory.capacity();
    t.kvEdram.totalBandwidth = t.kvMemory.bandwidth();
    t.kvEdram.refreshEnergy = kSteadyStateRefresh;
    return t;
}

TechnologyConfig
originalSramTech()
{
    TechnologyConfig t;
    // Section 8.1.1: balanced compute/memory-IO ratio gives a 24x24
    // 8-bit PE array with 4 MB of on-chip SRAM at the same total area.
    t.rsa.rows = 24;
    t.rsa.cols = 24;
    t.rsa.area = Area::mm2(2.19 * (24.0 * 24.0) / (32.0 * 32.0));
    t.kvMemory = mem::sram(Bytes::mib(4), Bandwidth::gibPerSec(128));
    t.kvIsEdram = false;
    t.actBuffer = mem::sram(Bytes::kib(256), Bandwidth::gibPerSec(128));
    t.actIsEdram = false;
    return t;
}

TechnologyConfig
kelleSramTech()
{
    TechnologyConfig t = kelleTech();
    t.kvMemory = mem::sram(Bytes::mib(4), Bandwidth::gibPerSec(128));
    t.kvIsEdram = false;
    t.actBuffer = mem::sram(Bytes::kib(256), Bandwidth::gibPerSec(128));
    t.actIsEdram = false;
    return t;
}

TechnologyConfig
sramSystemTech(Bytes sram_capacity, std::size_t rsa_dim)
{
    TechnologyConfig t;
    t.rsa.rows = rsa_dim;
    t.rsa.cols = rsa_dim;
    t.kvMemory = mem::sram(sram_capacity, Bandwidth::gibPerSec(128));
    t.kvIsEdram = false;
    t.actBuffer = mem::sram(Bytes::kib(256), Bandwidth::gibPerSec(128));
    t.actIsEdram = false;
    return t;
}

TechnologyConfig
edramSystemTech(Bytes edram_capacity)
{
    TechnologyConfig t;
    t.kvMemory = mem::edram(edram_capacity, Bandwidth::gibPerSec(256));
    t.kvIsEdram = true;
    t.kvEdram.capacity = edram_capacity;
    t.kvEdram.totalBandwidth = t.kvMemory.bandwidth();
    t.kvEdram.refreshEnergy = kSteadyStateRefresh;
    return t;
}

} // namespace accel
} // namespace kelle
