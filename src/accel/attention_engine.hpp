/**
 * @file
 * Hardware-coupled decode attention (the inner loop of Section 5).
 *
 * Executes one head's decode-step attention on the cycle-level
 * component models instead of float kernels:
 *
 *   1. q and the gathered K rows are quantized to int8;
 *   2. scores = K . q run on the reconfigurable systolic array, with
 *      the systolic evictor tapping the output drain to accumulate
 *      importance and track the minimum (Figure 11 c/d);
 *   3. Softermax on the SFU turns scores into probabilities;
 *   4. probabilities (re-quantized) multiply V on the RSA;
 *   5. the victim slot the evictor selected is reported alongside
 *      cycle and energy statistics.
 *
 * The result must match the float attention path within int8
 * quantization error — the integration test suite checks exactly
 * that, plus victim agreement with the algorithmic policy.
 */

#ifndef KELLE_ACCEL_ATTENTION_ENGINE_HPP
#define KELLE_ACCEL_ATTENTION_ENGINE_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "accel/sfu.hpp"
#include "accel/systolic_array.hpp"
#include "accel/systolic_evictor.hpp"
#include "tensor/matrix.hpp"

namespace kelle {
namespace accel {

/** Result of one hardware attention pass. */
struct AttentionResult
{
    std::vector<float> output;  ///< y = softmax(K q / sqrt(d)) V
    std::vector<float> probs;   ///< softermax probabilities
    std::optional<std::size_t> victim; ///< SE min-importance slot
    std::uint64_t cycles = 0;   ///< RSA cycles consumed
    std::uint64_t macs = 0;     ///< useful MACs
    std::size_t sfuOps = 0;     ///< SFU scalar ops
};

/** Decode attention executed on the cycle-level hardware models. */
class AttentionEngine
{
  public:
    /** `array_dim` is the square RSA dimension (32 in Kelle). */
    explicit AttentionEngine(std::size_t array_dim);

    /**
     * Run one head: `k` and `v` are the gathered cache contents
     * [n x headDim], `q` the query of length headDim, `importance`
     * the current importance scores (length n). `protected_slots`
     * marks sink/recent slots the evictor must skip; empty means the
     * eviction search is skipped entirely (cache below budget).
     */
    AttentionResult run(const tensor::Matrix &k, const tensor::Matrix &v,
                        std::span<const float> q,
                        std::span<const float> importance,
                        std::span<const std::uint8_t> protected_slots);

    const SystolicArray &array() const { return rsa_; }
    const Sfu &sfu() const { return sfu_; }

  private:
    SystolicArray rsa_;
    Sfu sfu_;
};

/** Symmetric int8 quantization of a vector; returns the scale. */
float quantizeVectorI8(std::span<const float> x,
                       std::span<std::int8_t> out);

} // namespace accel
} // namespace kelle

#endif // KELLE_ACCEL_ATTENTION_ENGINE_HPP
