/**
 * @file
 * Analytic latency/energy/area models for the non-eDRAM memories of the
 * Kelle system: on-chip SRAM (weight buffer, or KV storage in the
 * SRAM-based baselines) and off-chip LPDDR4 DRAM.
 *
 * Constants follow Table 1 (65 nm SRAM characterized with Destiny) and
 * Section 8 (16 GB LPDDR4 at 64 GB/s simulated with CACTI-7, as in the
 * Google Coral-class edge platform). Capacity scaling: area and leakage
 * scale linearly with capacity; per-byte access energy scales with
 * sqrt(capacity) (bitline/wordline growth), anchored at the 4 MB point.
 */

#ifndef KELLE_MEMORY_MEMORY_MODEL_HPP
#define KELLE_MEMORY_MEMORY_MODEL_HPP

#include <string>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace kelle {
namespace mem {

/** A bandwidth/latency/energy point model of one memory. */
class MemoryModel
{
  public:
    MemoryModel() = default;
    MemoryModel(std::string name, Bytes capacity, Bandwidth bw,
                Time access_latency, EnergyPerByte access_energy,
                Power leakage, Area area);

    const std::string &name() const { return name_; }
    Bytes capacity() const { return capacity_; }
    Bandwidth bandwidth() const { return bandwidth_; }
    Time accessLatency() const { return accessLatency_; }
    EnergyPerByte accessEnergy() const { return accessEnergy_; }
    Power leakage() const { return leakage_; }
    Area area() const { return area_; }

    /** Streaming transfer time for a volume (bandwidth-bound). */
    Time transferTime(Bytes bytes) const { return bytes / bandwidth_; }
    /** Access energy for a volume. */
    Energy
    transferEnergy(Bytes bytes) const
    {
        return accessEnergy_ * bytes;
    }

  private:
    std::string name_;
    Bytes capacity_;
    Bandwidth bandwidth_;
    Time accessLatency_;
    EnergyPerByte accessEnergy_;
    Power leakage_;
    Area area_;
};

/**
 * On-chip SRAM scaled from the Table 1 4 MB anchor
 * (7.3 mm^2, 2.6 ns, 185.9 pJ/B, 415 mW) to the given capacity.
 */
MemoryModel sram(Bytes capacity, Bandwidth bw);

/**
 * On-chip eDRAM scaled from the Table 1 4 MB anchor
 * (3.2 mm^2, 1.9 ns, 84.8 pJ/B, 154 mW). The refresh machinery lives
 * in src/edram; this point model covers bandwidth/energy/area for the
 * analytic timing model.
 */
MemoryModel edram(Bytes capacity, Bandwidth bw);

/** 16 GB LPDDR4 at 64 GB/s (Section 8). */
MemoryModel lpddr4();

/** Cumulative traffic accounting against one memory. */
class TrafficMeter
{
  public:
    explicit TrafficMeter(const MemoryModel &model) : model_(&model) {}

    void
    read(Bytes bytes)
    {
        readBytes_ += bytes;
    }
    void
    write(Bytes bytes)
    {
        writeBytes_ += bytes;
    }

    Bytes readBytes() const { return readBytes_; }
    Bytes writeBytes() const { return writeBytes_; }
    Bytes total() const { return readBytes_ + writeBytes_; }
    Energy energy() const { return model_->transferEnergy(total()); }
    Time busTime() const { return model_->transferTime(total()); }

  private:
    const MemoryModel *model_;
    Bytes readBytes_{0};
    Bytes writeBytes_{0};
};

} // namespace mem
} // namespace kelle

#endif // KELLE_MEMORY_MEMORY_MODEL_HPP
