#include "memory/memory_model.hpp"

#include <cmath>

#include "common/log.hpp"

namespace kelle {
namespace mem {

MemoryModel::MemoryModel(std::string name, Bytes capacity, Bandwidth bw,
                         Time access_latency, EnergyPerByte access_energy,
                         Power leakage, Area area)
    : name_(std::move(name)), capacity_(capacity), bandwidth_(bw),
      accessLatency_(access_latency), accessEnergy_(access_energy),
      leakage_(leakage), area_(area)
{
    KELLE_ASSERT(capacity.b() > 0 && bw.value > 0,
                 "memory model needs positive capacity and bandwidth");
}

namespace {

/** Scale a 4 MB anchor to `capacity`. */
MemoryModel
scaledOnChip(const std::string &name, Bytes capacity, Bandwidth bw,
             Time latency4, double pj_per_byte4, double leak_mw4,
             double area_mm2_4)
{
    const double ratio = capacity.inMib() / 4.0;
    const double energy_scale = std::sqrt(ratio);
    // Latency grows weakly with capacity; use sqrt scaling as well.
    return MemoryModel(
        name, capacity, bw, latency4 * std::sqrt(std::max(ratio, 0.05)),
        EnergyPerByte::picojoules(pj_per_byte4 * energy_scale),
        Power::milliwatts(leak_mw4 * ratio), Area::mm2(area_mm2_4 * ratio));
}

} // namespace

MemoryModel
sram(Bytes capacity, Bandwidth bw)
{
    // Table 1: 4 MB SRAM @65 nm: 7.3 mm^2, 2.6 ns, 185.9 pJ/B, 415 mW.
    return scaledOnChip("sram", capacity, bw, Time::nanos(2.6), 185.9,
                        415.0, 7.3);
}

MemoryModel
edram(Bytes capacity, Bandwidth bw)
{
    // Table 1: 4 MB eDRAM @65 nm: 3.2 mm^2, 1.9 ns, 84.8 pJ/B, 154 mW.
    return scaledOnChip("edram", capacity, bw, Time::nanos(1.9), 84.8,
                        154.0, 3.2);
}

MemoryModel
lpddr4()
{
    // Section 8: 16 GB LPDDR4, 64 GB/s, CACTI-7 characterization; the
    // paper reports 16 mm^2 and 11.74 W at full streaming utilization.
    // 120 pJ/B device+interface energy is the CACTI-7-class figure for
    // LPDDR4 at this rate and, together with background power, lands at
    // the paper's DRAM power at full bandwidth.
    return MemoryModel("lpddr4", Bytes::gib(16),
                       Bandwidth::gibPerSec(64), Time::nanos(100),
                       EnergyPerByte::picojoules(120.0),
                       Power::watts(0.55), Area::mm2(16.0));
}

} // namespace mem
} // namespace kelle
