/**
 * @file
 * Table 5 reproduction: qualitative-metric proxies. The paper checks
 * that 2DRP's approximate memory behaviour does not hurt coherence
 * (CNN/DailyMail ROUGE-1), factuality (TruthfulQA) or bias (BBQ).
 *
 * Substitution: without trained models these are measured as
 * generation fidelity on three stream profiles — long-form generation
 * (coherence proxy), prompt-conditioned continuation (factuality
 * proxy: greedy agreement with the clean model) and a distribution-
 * shift profile (bias proxy: agreement on low-probability branches).
 * The claim under test is the paper's: Kelle stays within a few
 * percent of the FP16 baseline on all profiles.
 */

#include "bench_util.hpp"
#include "common/table.hpp"
#include "edram/fault_model.hpp"
#include "sim/experiments.hpp"

using namespace kelle;

namespace {

struct Profile
{
    const char *name;
    sim::Task task;
    std::uint64_t seed;
};

} // namespace

int
main()
{
    const edram::TwoDRefreshPolicy refresh(
        edram::RefreshIntervals::paper2drp(),
        edram::RetentionModel::paper65nm());

    const std::vector<Profile> profiles = {
        {"CNN-proxy (long-form)", sim::scaledForTiny(sim::pg19(), 192),
         11},
        {"Truth-proxy (conditioned)",
         sim::scaledForTiny(sim::triviaQa(), 144), 22},
        {"BBQ-proxy (shifted)", sim::scaledForTiny(sim::lambada(), 128),
         33},
    };

    for (const auto &model_cfg :
         {model::tinyLm(), model::tinyLmGqa()}) {
        bench::banner("Table 5 qualitative proxies: " + model_cfg.name);
        Table t({"profile", "FP16 score", "Kelle score", "gap"});
        for (const auto &p : profiles) {
            sim::AccuracyBench bench_ctx(p.task, p.seed, model_cfg);
            const auto full = bench_ctx.run(kv::makeFullConfig());
            auto cfg = sim::cacheConfigFor(p.task, kv::Policy::Aerp);
            edram::RefreshFaultModel inj(refresh, p.seed + 5);
            const auto kelle = bench_ctx.run(cfg, &inj);
            // Score = Agreement@1 with the clean baseline (100% for
            // the FP16 run by construction; the paper's scores are
            // likewise relative quality metrics).
            t.addRow({p.name, Table::pct(full.agreementTop1),
                      Table::pct(kelle.agreementTop1),
                      Table::pct(full.agreementTop1 -
                                 kelle.agreementTop1)});
        }
        t.print();
    }
    bench::note("paper Table 5: Kelle within ~1-2 points of FP16 on "
                "ROUGE-1 / TruthfulQA / BBQ");
    return 0;
}
