/**
 * @file
 * Section 8.4.1 reproduction: maximum supported input length for
 * LLaMA2-7B on the 16 GB device — full fp16 cache, AERP layer-wise
 * release, and AERP + 4-bit KV — against the paper's ~19K / ~60K /
 * ~240K token walk-through.
 *
 * `--paged` adds the paged KV pool axis (ISSUE 8): the same free DRAM
 * carved into fixed-size token pages at fp16/INT8/INT4 page precision
 * (tensor::quantizedStoreBytes accounts the per-group scale/zero
 * metadata), plus the steady-state resident-token multiplier that
 * copy-free prefix sharing adds on top for multi-turn sessions.
 */

#include "accel/capacity.hpp"
#include "bench_util.hpp"
#include "common/arg_parser.hpp"
#include "common/table.hpp"
#include "tensor/quant.hpp"

using namespace kelle;
using namespace kelle::accel;

int
main(int argc, char **argv)
{
    common::ArgParser args("bench_sec84_longcontext",
                           "Section 8.4.1 long-context capacity");
    args.addBool("paged", false,
                 "add the paged KV pool capacity axis (page-granular "
                 "pool + shared-prefix multiplier)");
    args.addInt("block-tokens", 64, "paged axis: tokens per KV page");
    args.addInt("sessions", 8,
                "paged axis: concurrent sessions sharing one system "
                "prompt each");
    args.addDouble("prefix-frac", 0.5,
                   "paged axis: fraction of each context covered by "
                   "the shared session prefix");
    if (!args.parse(argc, argv))
        return args.exitCode();

    const auto m = model::llama2_7b();
    bench::banner("Section 8.4.1: long-context capacity on 16 GB DRAM "
                  "(LLaMA2-7B, 8-bit weights)");

    Table t({"configuration", "peak B/token", "max tokens", "paper"});

    CapacitySpec full;
    const auto r1 = maxSupportedTokens(m, full);
    t.addRow({"full fp16 KV cache",
              Table::num(r1.bytesPerTokenPeak / 1024, 1) + " KiB",
              std::to_string(r1.maxTokens), "~19,000"});

    CapacitySpec aerp = full;
    aerp.aerpLayerwise = true;
    aerp.budget = 2048;
    const auto r2 = maxSupportedTokens(m, aerp);
    t.addRow({"AERP layer-wise release",
              Table::num(r2.bytesPerTokenPeak / 1024, 1) + " KiB",
              std::to_string(r2.maxTokens), "~60,000"});

    CapacitySpec quant = aerp;
    quant.kvBits = 4;
    const auto r3 = maxSupportedTokens(m, quant);
    t.addRow({"AERP + 4-bit KV",
              Table::num(r3.bytesPerTokenPeak / 1024, 1) + " KiB",
              std::to_string(r3.maxTokens), "~240,000"});
    t.print();

    std::printf("weights: %.2f GB of %.0f GB DRAM\n",
                r1.weightBytes / 1e9, 16.0 * 1.074);
    bench::note("paper: 19K tokens without AERP, ~60K with AERP's "
                "immediate per-layer reduction, ~240K with 4-bit KV "
                "quantization on top");

    // ---- paged axis: the free DRAM as a page pool ---------------------
    if (args.getBool("paged")) {
        const std::size_t block = args.getSize("block-tokens");
        const double values_per_token = m.kvBytesPerToken(16) / 2.0;
        bench::banner(
            "Paged KV pool: free DRAM as " + std::to_string(block) +
            "-token pages (group-quantized page storage)");

        Table p({"page precision", "bytes/page", "pages",
                 "resident tokens", "vs fp16"});
        std::size_t tokens16 = 0;
        for (int bits : {16, 8, 4}) {
            const double bytes_per_page = tensor::quantizedStoreBytes(
                static_cast<std::size_t>(values_per_token) * block,
                bits, 32);
            const auto pages = static_cast<std::size_t>(
                r1.freeBytes / bytes_per_page);
            const std::size_t tokens = pages * block;
            if (bits == 16)
                tokens16 = tokens;
            p.addRow({bits == 16 ? "fp16"
                                 : "INT" + std::to_string(bits),
                      Table::num(bytes_per_page / 1024, 1) + " KiB",
                      std::to_string(pages), std::to_string(tokens),
                      Table::mult(static_cast<double>(tokens) /
                                  static_cast<double>(tokens16))});
        }
        p.print();

        // Copy-free prefix sharing on top: with S sessions each
        // holding one request whose first `frac` of context is the
        // session prompt stored once, every additional same-session
        // turn only pays the (1 - frac) unique tail. In steady state
        // with N resident requests the logical-resident multiplier is
        //   N*L / ((1-frac)*N*L + frac*S*L) = 1 / (1-frac + frac*S/N).
        const std::size_t sessions =
            std::max<std::size_t>(1, args.getSize("sessions"));
        const double frac = args.getDouble("prefix-frac");
        Table s({"resident turns", "physical tokens per logical",
                 "shared multiplier"});
        for (std::size_t n : {sessions, 2 * sessions, 4 * sessions}) {
            const double phys =
                (1.0 - frac) +
                frac * static_cast<double>(sessions) /
                    static_cast<double>(n);
            s.addRow({std::to_string(n), Table::num(phys, 2),
                      Table::mult(1.0 / phys)});
        }
        s.print();
        bench::note(
            std::to_string(sessions) + " sessions, " +
            Table::pct(frac) +
            " of each context in the shared prompt: the multiplier "
            "approaches 1/(1-frac) = " +
            Table::mult(1.0 / (1.0 - frac)) +
            " as turns accumulate — on top of the INT8/INT4 page "
            "packing above");
    }
    return 0;
}
