/**
 * @file
 * Section 8.4.1 reproduction: maximum supported input length for
 * LLaMA2-7B on the 16 GB device — full fp16 cache, AERP layer-wise
 * release, and AERP + 4-bit KV — against the paper's ~19K / ~60K /
 * ~240K token walk-through.
 */

#include "accel/capacity.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

using namespace kelle;
using namespace kelle::accel;

int
main()
{
    const auto m = model::llama2_7b();
    bench::banner("Section 8.4.1: long-context capacity on 16 GB DRAM "
                  "(LLaMA2-7B, 8-bit weights)");

    Table t({"configuration", "peak B/token", "max tokens", "paper"});

    CapacitySpec full;
    const auto r1 = maxSupportedTokens(m, full);
    t.addRow({"full fp16 KV cache",
              Table::num(r1.bytesPerTokenPeak / 1024, 1) + " KiB",
              std::to_string(r1.maxTokens), "~19,000"});

    CapacitySpec aerp = full;
    aerp.aerpLayerwise = true;
    aerp.budget = 2048;
    const auto r2 = maxSupportedTokens(m, aerp);
    t.addRow({"AERP layer-wise release",
              Table::num(r2.bytesPerTokenPeak / 1024, 1) + " KiB",
              std::to_string(r2.maxTokens), "~60,000"});

    CapacitySpec quant = aerp;
    quant.kvBits = 4;
    const auto r3 = maxSupportedTokens(m, quant);
    t.addRow({"AERP + 4-bit KV",
              Table::num(r3.bytesPerTokenPeak / 1024, 1) + " KiB",
              std::to_string(r3.maxTokens), "~240,000"});
    t.print();

    std::printf("weights: %.2f GB of %.0f GB DRAM\n",
                r1.weightBytes / 1e9, 16.0 * 1.074);
    bench::note("paper: 19K tokens without AERP, ~60K with AERP's "
                "immediate per-layer reduction, ~240K with 4-bit KV "
                "quantization on top");
    return 0;
}
