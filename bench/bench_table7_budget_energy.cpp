/**
 * @file
 * Table 7 reproduction: Kelle+eDRAM energy efficiency over
 * Original+SRAM across KV cache budgets N' on PG19, for LLaMA3.2-3B
 * and LLaMA2-13B. N' = 8750 is the no-eviction upper bound (512
 * prefill + 8192 decode + margin).
 */

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace kelle;

int
main()
{
    bench::banner("Table 7: energy efficiency vs KV budget N' "
                  "(PG19, batch 16)");
    Table t({"model", "N'", "energy_eff vs Original+SRAM", "speedup"});

    for (const auto &mc : {model::llama32_3b(), model::llama2_13b()}) {
        sim::Task task = sim::pg19();
        const auto w = sim::makeWorkload(task, mc, 16);
        const auto base =
            accel::simulate(accel::originalSramSystem(), w);
        for (std::size_t budget :
             {2048u, 3500u, 5250u, 7000u, 8750u}) {
            auto sys = accel::kelleEdramSystem(budget);
            if (budget >= task.ctxLen + task.decLen) {
                // No eviction happens at the upper bound.
                sys.kv.evict = false;
            }
            const auto r = accel::simulate(sys, w);
            const auto cmp = accel::compare(base, r);
            t.addRow({mc.name, std::to_string(budget),
                      Table::mult(cmp.energyEfficiency),
                      Table::mult(cmp.speedup)});
        }
    }
    t.print();
    bench::note("paper Table 7: LLaMA3.2-3B 8.07x -> 4.55x and "
                "LLaMA2-13B 5.06x -> 3.11x as N' grows 2048 -> 8750; "
                "even without eviction Kelle keeps ~3x from eDRAM + "
                "2DRP + scheduler");
    return 0;
}
