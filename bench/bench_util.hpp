/**
 * @file
 * Shared helpers for the bench harnesses: headers and run banners.
 */

#ifndef KELLE_BENCH_BENCH_UTIL_HPP
#define KELLE_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "obs/attribution.hpp"

namespace kelle {
namespace bench {

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

/** Print a paper-vs-measured note line. */
inline void
note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

/**
 * Print a `--attribution` roll-up: the aggregate latency waterfall
 * and the per-cause SLO miss breakdown (one column per device when
 * names are given). Shared by bench_serving and bench_cluster so the
 * two print byte-compatible tables.
 */
inline void
printAttribution(const obs::AttributionReport &rep,
                 const std::vector<std::string> &device_names,
                 const std::string &caption)
{
    double e2e_total = 0.0;
    for (std::size_t i = 0; i < obs::kLatencyComponentCount; ++i)
        e2e_total += rep.componentTotals[i];
    Table components({"component", "total_s", "share"});
    for (std::size_t i = 0; i < obs::kLatencyComponentCount; ++i) {
        const double v = rep.componentTotals[i];
        components.addRow(
            {obs::toString(static_cast<obs::LatencyComponent>(i)),
             Table::num(v, 6),
             Table::pct(e2e_total > 0.0 ? v / e2e_total : 0.0)});
    }
    components.print("latency waterfall (" + caption + "; " +
                     std::to_string(rep.terminal) + " terminal, " +
                     std::to_string(rep.completed) + " completed, " +
                     std::to_string(rep.rejected) + " rejected)");

    std::vector<std::string> header = {"miss cause", "total"};
    for (std::size_t d = 0; d < rep.devices.size(); ++d)
        header.push_back(d < device_names.size()
                             ? device_names[d]
                             : "device" + std::to_string(d));
    Table causes(std::move(header));
    for (std::size_t i = 0; i < obs::kMissCauseCount; ++i) {
        // device_fault shows up only on fault runs; skipping the
        // zero row keeps faults-off tables byte-identical.
        if (static_cast<obs::MissCause>(i) ==
                obs::MissCause::DeviceFault &&
            rep.missCounts[i] == 0)
            continue;
        std::vector<std::string> row = {
            obs::toString(static_cast<obs::MissCause>(i)),
            std::to_string(rep.missCounts[i])};
        for (const auto &dev : rep.devices)
            row.push_back(std::to_string(dev.missCounts[i]));
        causes.addRow(std::move(row));
    }
    causes.print("miss causes (" + caption + "; " +
                 std::to_string(rep.misses) + " of " +
                 std::to_string(rep.terminal) +
                 " requests missed an SLO)");
}

} // namespace bench
} // namespace kelle

#endif // KELLE_BENCH_BENCH_UTIL_HPP
