/**
 * @file
 * Shared helpers for the bench harnesses: headers and run banners.
 */

#ifndef KELLE_BENCH_BENCH_UTIL_HPP
#define KELLE_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <string>

namespace kelle {
namespace bench {

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

/** Print a paper-vs-measured note line. */
inline void
note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

} // namespace bench
} // namespace kelle

#endif // KELLE_BENCH_BENCH_UTIL_HPP
