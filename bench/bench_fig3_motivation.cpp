/**
 * @file
 * Figure 3 reproduction (the motivation study):
 *  (a) normalized decode latency of 4 MB vs 8 MB SRAM systems running
 *      LLaMA2-7B across sequence lengths;
 *  (b) area breakdown of iso-capacity 8 MB eDRAM vs 8 MB SRAM systems;
 *  (c) energy breakdown of the unoptimized eDRAM system (45 us
 *      refresh), showing the refresh share across decode lengths.
 */

#include "accel/area_model.hpp"
#include "accel/timing_model.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

using namespace kelle;
using namespace kelle::accel;

namespace {

SystemConfig
plainSramSystem(Bytes sram)
{
    SystemConfig s;
    s.name = "SRAM-" + std::to_string(
                 static_cast<int>(sram.inMib())) + "MB";
    s.tech = sramSystemTech(sram);
    s.scheduler = SchedulerKind::Baseline;
    s.kv.evict = false;
    s.kv.recompute = RecomputeMode::None;
    s.kv.systolicEvictor = false;
    s.refresh.mode = RefreshSpec::Mode::None;
    return s;
}

SystemConfig
plainEdramSystem(Bytes cap)
{
    SystemConfig s;
    s.name = "eDRAM-" + std::to_string(
                 static_cast<int>(cap.inMib())) + "MB";
    s.tech = edramSystemTech(cap);
    s.scheduler = SchedulerKind::Baseline;
    s.kv.evict = false;
    s.kv.recompute = RecomputeMode::None;
    s.kv.systolicEvictor = false;
    s.refresh.mode = RefreshSpec::Mode::Retention; // 45 us floor
    return s;
}

} // namespace

int
main()
{
    const auto m7 = model::llama2_7b();
    const auto m13 = model::llama2_13b();

    // ---- (a) latency: 4 MB vs 8 MB SRAM -----------------------------
    bench::banner("Figure 3a: normalized latency, 4 MB vs 8 MB SRAM "
                  "(LLaMA2-7B, prefill 512, batch 16)");
    Table a({"seq_len", "4MB (norm)", "8MB (norm)", "8MB speedup"});
    for (std::size_t seq : {1024u, 2048u, 4096u, 8192u}) {
        Workload w;
        w.model = m7;
        w.ctxLen = 512;
        w.decLen = seq - 512;
        w.batch = 16;
        const auto r4 = simulate(plainSramSystem(Bytes::mib(4)), w);
        const auto r8 = simulate(plainSramSystem(Bytes::mib(8)), w);
        const double t4 = r4.totalLatency().sec();
        const double t8 = r8.totalLatency().sec();
        a.addRow({std::to_string(seq), "1.00", Table::num(t8 / t4, 3),
                  Table::mult(t4 / t8)});
    }
    a.print();
    bench::note("paper: 1.27x average speedup from doubling SRAM; the "
                "gap grows with sequence length as attention "
                "intermediates spill");

    // ---- (b) area ----------------------------------------------------
    bench::banner("Figure 3b: area breakdown, 8 MB eDRAM vs 8 MB SRAM "
                  "system");
    Table b({"component", "eDRAM system (mm^2)", "SRAM system (mm^2)"});
    const auto ed = areaReport(edramSystemTech(Bytes::mib(8)));
    const auto sr = areaReport(sramSystemTech(Bytes::mib(8)));
    for (std::size_t i = 0; i < ed.onChip.size(); ++i) {
        b.addRow({ed.onChip[i].name,
                  Table::num(ed.onChip[i].area.inMm2(), 2),
                  Table::num(sr.onChip[i].area.inMm2(), 2)});
    }
    b.addRow({"total on-chip", Table::num(ed.onChipTotal.inMm2(), 2),
              Table::num(sr.onChipTotal.inMm2(), 2)});
    b.print();
    bench::note("the 8 MB-eDRAM system fits in a smaller die than the "
                "8 MB-SRAM system (paper: red budget line between them)");

    // ---- (c) energy breakdown with naive refresh ---------------------
    bench::banner("Figure 3c: energy breakdown of the unoptimized 8 MB "
                  "eDRAM system (45 us refresh, prefill 512)");
    Table c({"model", "dec_len", "refresh", "dram", "buffer",
             "compute+sfu"});
    for (const auto &mc : {m7, m13}) {
        for (std::size_t dec : {1024u, 2048u, 4096u, 8192u}) {
            Workload w;
            w.model = mc;
            w.ctxLen = 512;
            w.decLen = dec;
            w.batch = 16;
            const auto r = simulate(plainEdramSystem(Bytes::mib(8)), w);
            EnergyBreakdown e = r.prefillEnergy;
            e += r.decodeEnergy;
            const double tot = e.total().j();
            c.addRow({mc.name, std::to_string(dec),
                      Table::pct(e.refresh.j() / tot),
                      Table::pct(e.dram.j() / tot),
                      Table::pct((e.weightSram + e.kvMem).j() / tot),
                      Table::pct((e.rsa + e.sfu).j() / tot)});
        }
    }
    c.print();
    bench::note("paper: refresh reaches up to 46% of total energy "
                "without optimization (1.7x average energy increase)");
    return 0;
}
