/**
 * @file
 * Simulator-throughput harness: how fast the serving/cluster core
 * itself runs, as opposed to what it predicts. Drives the 2-device
 * heterogeneous eDRAM/SRAM knee sweep of bench_cluster (same fleet,
 * same trace generator, every dispatch policy) under wall-clock
 * instrumentation and reports simulated-requests/sec,
 * engine-steps/sec, the step-cost-cache hit rate and the share of
 * decode boundaries the engine fast-forwarded, plus peak RSS.
 *
 * Emits `BENCH_simspeed.json` (schema v2 in bench/README.md) so the
 * repo's performance trajectory is tracked. The CI gate is
 * self-relative — `--ref` times the same sweep with the fast path off
 * (`ServingConfig::fastSim = false`, the uncached step-at-a-time
 * core) on the same runner and CI fails when the speedup over that
 * reference drops below its floor — so a slower CI machine cannot
 * fail the gate and a faster one cannot hide a regression, unlike the
 * absolute steps/sec floor it replaces.
 *
 * `--devices` scales the alternating eDRAM/SRAM fleet and `--threads`
 * engages the deterministic parallel cluster engine; with threads > 1
 * the sweep is additionally timed at `threads = 1` and the report
 * carries a `thread_scaling` section with the speedup (outputs are
 * bit-identical by construction — only wall-clock varies).
 *
 * Cells run serially (never via parallelFor): each wall-clock sample
 * must own the machine (the only intra-cell parallelism is the
 * cluster engine's own worker lanes when --threads > 1).
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "accel/capacity.hpp"
#include "bench_util.hpp"
#include "cluster/cluster_engine.hpp"
#include "common/arg_parser.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "obs/profile.hpp"

using namespace kelle;

namespace {

/** Peak resident set size in bytes (0 where unsupported). */
double
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage u
    {
    };
    if (getrusage(RUSAGE_SELF, &u) != 0)
        return 0.0;
#if defined(__APPLE__)
    return static_cast<double>(u.ru_maxrss); // bytes
#else
    return static_cast<double>(u.ru_maxrss) * 1024.0; // KiB
#endif
#else
    return 0.0;
#endif
}

/** The bench_cluster knee fleet scaled to n devices: alternating
 *  full-pool eDRAM and half-pool SRAM. */
std::vector<cluster::DeviceSpec>
kneeFleet(const model::ModelConfig &m, std::size_t n)
{
    const auto edram_sys = accel::kelleEdramSystem(2048);
    accel::CapacitySpec spec;
    spec.dramCapacity = edram_sys.tech.dram.capacity();
    spec.weightBits = edram_sys.tech.weightBits;
    spec.kvBits = edram_sys.kv.kvBits;
    const std::size_t edram_pool =
        accel::maxSupportedTokens(m, spec).maxTokens;
    return cluster::heteroEdramSramFleet(n, 2048, edram_pool,
                                         edram_pool / 2, 16);
}

struct CellResult
{
    std::string dispatch;
    double wallSec = 0.0;
    std::size_t completed = 0;
    std::uint64_t engineSteps = 0;
    std::uint64_t fastForwarded = 0;
    accel::StepCostCache::Stats cache;
};

CellResult
runCell(const cluster::ClusterConfig &base,
        cluster::DispatchKind dispatch)
{
    cluster::ClusterConfig cfg = base;
    cfg.dispatch = dispatch;
    const auto t0 = std::chrono::steady_clock::now();
    cluster::ClusterEngine engine(cfg);
    const cluster::ClusterReport rep = engine.run();
    const auto t1 = std::chrono::steady_clock::now();

    CellResult c;
    c.dispatch = toString(dispatch);
    c.wallSec = std::chrono::duration<double>(t1 - t0).count();
    c.completed = rep.aggregate.summary.completed;
    for (std::size_t i = 0; i < engine.deviceCount(); ++i) {
        c.engineSteps += engine.device(i).engineSteps();
        c.fastForwarded += engine.device(i).fastForwardedSteps();
        c.cache += engine.device(i).costCacheStats();
    }
    return c;
}

struct Aggregate
{
    double wallSec = 0.0;
    std::size_t completed = 0;
    std::uint64_t engineSteps = 0;
    std::uint64_t fastForwarded = 0;
    accel::StepCostCache::Stats cache;

    void
    add(const CellResult &c)
    {
        wallSec += c.wallSec;
        completed += c.completed;
        engineSteps += c.engineSteps;
        fastForwarded += c.fastForwarded;
        cache += c.cache;
    }
    double
    requestsPerSec() const
    {
        return wallSec > 0.0
                   ? static_cast<double>(completed) / wallSec
                   : 0.0;
    }
    double
    stepsPerSec() const
    {
        return wallSec > 0.0
                   ? static_cast<double>(engineSteps) / wallSec
                   : 0.0;
    }
    double
    fastForwardShare() const
    {
        return engineSteps
                   ? static_cast<double>(fastForwarded) /
                         static_cast<double>(engineSteps)
                   : 0.0;
    }
};

void
writeJson(const std::string &path, const cluster::ClusterConfig &base,
          bool quick, const std::vector<CellResult> &cells,
          const Aggregate &fast, const Aggregate *ref,
          const Aggregate *serial, const obs::PhaseProfiler &prof)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"schema\": \"kelle.bench_simspeed/v3\",\n");
    std::fprintf(f,
                 "  \"config\": {\"devices\": %zu, \"hetero\": true, "
                 "\"threads\": %zu, \"hardware_threads\": %zu, "
                 "\"requests\": %zu, \"rate_per_sec\": %.6g, "
                 "\"seed\": %llu, \"policy\": \"%s\", "
                 "\"quick\": %s},\n",
                 base.devices.size(), base.threads,
                 common::defaultParallelism(),
                 base.engine.traffic.numRequests,
                 base.engine.traffic.ratePerSec,
                 static_cast<unsigned long long>(
                     base.engine.traffic.seed),
                 toString(base.engine.policy).c_str(),
                 quick ? "true" : "false");
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellResult &c = cells[i];
        std::fprintf(
            f,
            "    {\"dispatch\": \"%s\", \"wall_sec\": %.6f, "
            "\"completed\": %zu, \"engine_steps\": %llu, "
            "\"fast_forwarded\": %llu, \"cache_hits\": %llu, "
            "\"cache_misses\": %llu, \"cache_hit_rate\": %.4f}%s\n",
            c.dispatch.c_str(), c.wallSec, c.completed,
            static_cast<unsigned long long>(c.engineSteps),
            static_cast<unsigned long long>(c.fastForwarded),
            static_cast<unsigned long long>(c.cache.hits),
            static_cast<unsigned long long>(c.cache.misses),
            c.cache.hitRate(), i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"aggregate\": {\"wall_sec\": %.6f, "
        "\"simulated_requests_per_sec\": %.1f, "
        "\"engine_steps_per_sec\": %.1f, "
        "\"cost_cache_hit_rate\": %.4f, "
        "\"fast_forward_share\": %.4f}",
        fast.wallSec, fast.requestsPerSec(), fast.stepsPerSec(),
        fast.cache.hitRate(), fast.fastForwardShare());
    if (ref != nullptr) {
        std::fprintf(
            f,
            ",\n  \"reference\": {\"wall_sec\": %.6f, "
            "\"simulated_requests_per_sec\": %.1f, "
            "\"engine_steps_per_sec\": %.1f, "
            "\"speedup\": %.2f}",
            ref->wallSec, ref->requestsPerSec(), ref->stepsPerSec(),
            ref->wallSec > 0.0 && fast.wallSec > 0.0
                ? ref->wallSec / fast.wallSec
                : 0.0);
    }
    if (serial != nullptr) {
        std::fprintf(
            f,
            ",\n  \"thread_scaling\": {\"threads\": %zu, "
            "\"serial_wall_sec\": %.6f, "
            "\"serial_engine_steps_per_sec\": %.1f, "
            "\"speedup\": %.2f}",
            base.threads, serial->wallSec, serial->stepsPerSec(),
            serial->wallSec > 0.0 && fast.wallSec > 0.0
                ? serial->wallSec / fast.wallSec
                : 0.0);
    }
    std::fprintf(f, ",\n  \"phases\": {");
    bool first_phase = true;
    for (std::size_t p = 0; p < obs::PhaseProfiler::kPhases; ++p) {
        const auto ph = static_cast<obs::PhaseProfiler::Phase>(p);
        if (prof.count(ph) == 0)
            continue;
        std::fprintf(f,
                     "%s\n    \"%s\": {\"wall_sec\": %.6f, "
                     "\"count\": %llu}",
                     first_phase ? "" : ",",
                     obs::PhaseProfiler::phaseName(ph),
                     prof.seconds(ph),
                     static_cast<unsigned long long>(prof.count(ph)));
        first_phase = false;
    }
    std::fprintf(f, "\n  }");
    std::fprintf(f, ",\n  \"peak_rss_bytes\": %.0f\n}\n",
                 peakRssBytes());
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    common::ArgParser args(
        "bench_simspeed",
        "simulator wall-clock throughput on the 2-device hetero knee "
        "sweep (emits BENCH_simspeed.json)");
    args.addInt("requests", 0,
                "trace length per cell (0 = 4000, or 800 with "
                "--quick; an explicit value always wins)");
    args.addDouble("rate", 0.03,
                   "mean arrival rate in req/s (the 2-device hetero "
                   "knee of bench_cluster's study)");
    args.addInt("devices", 2,
                "fleet size (alternating eDRAM/SRAM knee fleet)");
    args.addInt("threads", 1,
                "worker lanes per cluster run (1 = serial engine, "
                "0 = hardware threads); outputs stay bit-identical — "
                "with threads > 1 the sweep is also timed serially "
                "and the report gains a thread_scaling section");
    args.addInt("seed", 42, "arrival-trace seed");
    args.addString("policy", "contbatch",
                   "per-device scheduling policy: " +
                       serving::schedulePolicyNames());
    args.addBool("quick", false,
                 "CI-sized run (800 requests per cell)");
    args.addBool("ref", false,
                 "also time the sweep with the fast path off and "
                 "report the speedup");
    args.addString("json", "BENCH_simspeed.json",
                   "output path for the JSON report");
    if (!args.parse(argc, argv))
        return args.exitCode();

    serving::SchedulePolicy policy;
    if (!serving::parseSchedulePolicy(args.getString("policy"),
                                      &policy)) {
        std::fprintf(stderr, "unknown --policy '%s' (%s)\n",
                     args.getString("policy").c_str(),
                     serving::schedulePolicyNames().c_str());
        return 1;
    }

    cluster::ClusterConfig base;
    base.engine.traffic.ratePerSec = args.getDouble("rate");
    const std::size_t explicit_requests = args.getSize("requests");
    base.engine.traffic.numRequests =
        explicit_requests ? explicit_requests
                          : (args.getBool("quick") ? 800 : 4000);
    base.engine.traffic.seed =
        static_cast<std::uint64_t>(args.getInt("seed"));
    base.engine.policy = policy;
    base.devices =
        kneeFleet(base.engine.model,
                  std::max<std::size_t>(1, args.getSize("devices")));
    base.threads = args.getSize("threads");

    bench::banner(
        "Sim throughput: " + std::to_string(base.devices.size()) +
        "-device hetero knee sweep, " +
        std::to_string(base.engine.traffic.numRequests) +
        " requests/cell at " +
        Table::num(base.engine.traffic.ratePerSec, 4) +
        " req/s, policy " + toString(base.engine.policy) + ", " +
        std::to_string(base.threads) + " worker lane(s), seed " +
        std::to_string(base.engine.traffic.seed));

    // Self-profile the fast sweep only: the serial and reference
    // sweeps below run with the profiler detached so the phase table
    // attributes every second to the configuration being reported.
    obs::PhaseProfiler prof;
    base.engine.profiler = &prof;

    const auto dispatches = cluster::allDispatchPolicies();
    std::vector<CellResult> cells;
    Aggregate fast;
    Table t({"dispatch", "wall", "done", "engine steps", "steps/s",
             "req/s", "cache hit", "fast-forwarded"});
    for (const auto d : dispatches) {
        CellResult c = runCell(base, d);
        fast.add(c);
        t.addRow({c.dispatch, Table::num(c.wallSec, 3) + " s",
                  std::to_string(c.completed),
                  std::to_string(c.engineSteps),
                  Table::num(c.engineSteps /
                                 std::max(c.wallSec, 1e-9),
                             0),
                  Table::num(c.completed / std::max(c.wallSec, 1e-9),
                             0),
                  Table::pct(c.cache.hitRate()),
                  Table::pct(c.engineSteps
                                 ? static_cast<double>(
                                       c.fastForwarded) /
                                       static_cast<double>(
                                           c.engineSteps)
                                 : 0.0)});
        cells.push_back(std::move(c));
    }
    t.print("wall-clock per cell; simulation outputs are the same "
            "pure function of the flags as bench_cluster's");

    bench::note(
        "aggregate: " + Table::num(fast.requestsPerSec(), 0) +
        " simulated requests/s, " + Table::num(fast.stepsPerSec(), 0) +
        " engine steps/s, cost-cache hit " +
        Table::pct(fast.cache.hitRate()) + ", fast-forwarded " +
        Table::pct(fast.fastForwardShare()) + " of boundaries");

    {
        Table pt({"phase", "wall", "count", "share"});
        const double total = prof.totalSeconds();
        for (std::size_t p = 0; p < obs::PhaseProfiler::kPhases;
             ++p) {
            const auto ph =
                static_cast<obs::PhaseProfiler::Phase>(p);
            if (prof.count(ph) == 0)
                continue;
            pt.addRow({obs::PhaseProfiler::phaseName(ph),
                       Table::num(prof.seconds(ph), 3) + " s",
                       std::to_string(prof.count(ph)),
                       Table::pct(total > 0.0
                                      ? prof.seconds(ph) / total
                                      : 0.0)});
        }
        pt.print("engine self-profile of the fast sweep; "
                 "fast_forward counts replayed boundaries, window "
                 "time sums across worker lanes");
    }

    Aggregate serial;
    const bool with_scaling = base.threads != 1;
    if (with_scaling) {
        cluster::ClusterConfig one = base;
        one.threads = 1;
        one.engine.profiler = nullptr;
        bench::banner("Thread scaling: the same sweep on the serial "
                      "shared-heap engine");
        Table st({"dispatch", "wall", "steps/s"});
        for (const auto d : dispatches) {
            CellResult c = runCell(one, d);
            serial.add(c);
            st.addRow({c.dispatch, Table::num(c.wallSec, 3) + " s",
                       Table::num(c.engineSteps /
                                      std::max(c.wallSec, 1e-9),
                                  0)});
        }
        st.print("bit-identical outputs; only wall-clock differs");
        bench::note("thread scaling at " +
                    std::to_string(base.threads) + " lanes: " +
                    Table::mult(serial.wallSec /
                                std::max(fast.wallSec, 1e-9)));
    }

    Aggregate ref;
    const bool with_ref = args.getBool("ref");
    if (with_ref) {
        cluster::ClusterConfig slow = base;
        slow.engine.fastSim = false;
        slow.engine.profiler = nullptr;
        bench::banner("Reference: fast path off (uncached "
                      "step-at-a-time core)");
        Table rt({"dispatch", "wall", "steps/s"});
        for (const auto d : dispatches) {
            CellResult c = runCell(slow, d);
            ref.add(c);
            rt.addRow({c.dispatch, Table::num(c.wallSec, 3) + " s",
                       Table::num(c.engineSteps /
                                      std::max(c.wallSec, 1e-9),
                                  0)});
        }
        rt.print("same traces, same outputs, no memoization or "
                 "fast-forward");
        bench::note("fast path speedup: " +
                    Table::mult(ref.wallSec /
                                std::max(fast.wallSec, 1e-9)));
    }

    writeJson(args.getString("json"), base, args.getBool("quick"),
              cells, fast, with_ref ? &ref : nullptr,
              with_scaling ? &serial : nullptr, prof);
    return 0;
}
