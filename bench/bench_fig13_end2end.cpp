/**
 * @file
 * Figure 13 reproduction: end-to-end speedup and energy efficiency of
 * the five systems (Original+SRAM, Original+eDRAM, AEP+SRAM,
 * AERP+SRAM, Kelle+eDRAM) on the four serving tasks (LA, TQ, QP,
 * PG19) with LLaMA2-7B at batch 16, plus the on-chip energy-breakdown
 * pies of the Kelle+eDRAM system and the stepwise contribution
 * analysis of Section 8.1.3.
 */

#include <map>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace kelle;

int
main()
{
    const auto model = model::llama2_7b();
    const auto tasks = sim::hardwareTasks();

    bench::banner("Figure 13: speedup and energy efficiency vs "
                  "Original+SRAM (LLaMA2-7B, batch 16)");
    Table t({"task", "system", "speedup", "energy_eff"});
    std::map<std::string, std::vector<sim::SystemResult>> per_task;
    for (const auto &task : tasks) {
        auto results = sim::runFigure13(task, model, 16);
        for (const auto &r : results) {
            t.addRow({task.name, r.system, Table::mult(r.speedup),
                      Table::mult(r.energyEfficiency)});
        }
        per_task[task.name] = std::move(results);
    }
    t.print();

    // Averages across tasks (the paper's headline numbers).
    Table avg({"system", "avg speedup", "avg energy_eff"});
    const char *systems[] = {"Original+SRAM", "Original+eDRAM",
                             "AEP+SRAM", "AERP+SRAM", "Kelle+eDRAM"};
    for (std::size_t s = 0; s < 5; ++s) {
        double sp = 0.0, ee = 0.0;
        for (const auto &task : tasks) {
            sp += per_task[task.name][s].speedup;
            ee += per_task[task.name][s].energyEfficiency;
        }
        avg.addRow({systems[s], Table::mult(sp / tasks.size()),
                    Table::mult(ee / tasks.size())});
    }
    avg.print("\ntask-averaged (paper: Kelle+eDRAM 3.94x speedup, "
              "4.46x energy efficiency):");

    // Stepwise contributions (Section 8.1.3).
    bench::banner("Section 8.1.3: individual contributions "
                  "(task-averaged ratios between consecutive systems)");
    Table steps({"step", "speedup", "energy_eff", "paper"});
    auto ratio = [&](std::size_t a, std::size_t b, const char *name,
                     const char *paper) {
        double sp = 0.0, ee = 0.0;
        for (const auto &task : tasks) {
            sp += per_task[task.name][b].speedup /
                  per_task[task.name][a].speedup;
            ee += per_task[task.name][b].energyEfficiency /
                  per_task[task.name][a].energyEfficiency;
        }
        steps.addRow({name, Table::mult(sp / tasks.size()),
                      Table::mult(ee / tasks.size()), paper});
    };
    ratio(0, 1, "eDRAM alone (Org+SRAM -> Org+eDRAM)",
          "1.32x / 0.72x");
    ratio(0, 2, "eviction+SE (Org+SRAM -> AEP+SRAM)", "2.39x / 2.41x");
    ratio(2, 3, "recompute (AEP -> AERP)", "1.19x / 1.27x");
    ratio(3, 4, "eDRAM+2DRP+scheduler (AERP+SRAM -> Kelle)",
          "1.29x / 1.45x");
    steps.print();

    // On-chip energy pies for Kelle+eDRAM (Figure 13 insets).
    bench::banner("Kelle+eDRAM on-chip energy breakdown per task "
                  "(Figure 13 pie charts)");
    Table pies({"task", "RSA", "KV mem+refresh", "weight SRAM", "SFU"});
    for (const auto &task : tasks) {
        const auto &kelle = per_task[task.name][4].report;
        accel::EnergyBreakdown e = kelle.prefillEnergy;
        e += kelle.decodeEnergy;
        const double on = e.onChipTotal().j();
        pies.addRow({task.name, Table::pct(e.rsa.j() / on),
                     Table::pct((e.kvMem + e.refresh).j() / on),
                     Table::pct(e.weightSram.j() / on),
                     Table::pct(e.sfu.j() / on)});
    }
    pies.print();
    bench::note("paper pies: RSA 12-17%, KV 17-30%, SRAM 56-66%");
    return 0;
}
