/**
 * @file
 * Table 2 reproduction: accuracy of FP16 (full cache), StreamingLLM,
 * H2O, QuaRot (4-bit KV) and Kelle (AERP + 2DRP faults) across model
 * variants and task proxies on the functional substrate.
 *
 * Substitution: trained checkpoints are replaced by the deterministic
 * TinyTransformer (MHA and GQA variants) and LM-harness tasks by
 * task-scaled self-generated streams (see DESIGN.md). Reported
 * metrics: perplexity (lower is better; the full-cache run is the
 * floor) and Agreement@1 vs the full-cache baseline (the analogue of
 * the paper's accuracy columns).
 */

#include "bench_util.hpp"
#include "common/arg_parser.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "edram/fault_model.hpp"
#include "sim/experiments.hpp"

using namespace kelle;

int
main(int argc, char **argv)
{
    common::ArgParser args("bench_table2_accuracy",
                           "Table 2: KV policy accuracy comparison");
    args.addInt("seed", 101, "base weight seed (GQA model uses seed+101)");
    args.addInt("seq", 0,
                "target sequence length for both tasks (0 = per-task "
                "defaults 160/128)");
    if (!args.parse(argc, argv))
        return args.exitCode();
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed"));
    const std::size_t seq = args.getSize("seq");

    const edram::TwoDRefreshPolicy refresh(
        edram::RefreshIntervals::paper2drp(),
        edram::RetentionModel::paper65nm());

    struct ModelCase
    {
        model::ModelConfig cfg;
        std::uint64_t seed;
    };
    const std::vector<ModelCase> models = {
        {model::tinyLm(), seed},        // MHA (LLaMA2-style stand-in)
        {model::tinyLmGqa(), seed + 101}, // GQA (Mistral/LLaMA3-style)
    };
    const std::vector<sim::Task> tasks = {
        sim::scaledForTiny(sim::wikitext2(), seq ? seq : 160),
        sim::scaledForTiny(sim::lambada(), seq ? seq : 128),
    };

    // The model x task cells are independent seeded substrates:
    // evaluate them across the machine with parallelFor, print in
    // serial order — output is bit-identical to the serial sweep.
    struct Cell
    {
        const ModelCase *model;
        const sim::Task *task;
        std::vector<std::vector<std::string>> rows;
    };
    std::vector<Cell> cells;
    for (const auto &mc : models)
        for (const auto &task : tasks)
            cells.push_back({&mc, &task, {}});

    common::parallelFor(cells.size(), [&](std::size_t i) {
        Cell &cell = cells[i];
        const ModelCase &mc = *cell.model;
        const sim::Task &task = *cell.task;
        sim::AccuracyBench bench_ctx(task, mc.seed, mc.cfg);

        const auto full = bench_ctx.run(kv::makeFullConfig());
        const double full_bytes = full.residentKvBytes;
        auto row = [&](const std::string &name,
                       const model::PolicyEval &e) {
            cell.rows.push_back(
                {name, Table::num(e.perplexity, 3),
                 Table::pct(e.agreementTop1),
                 Table::pct(e.residentKvBytes / full_bytes)});
        };
        row("FP16 (full)", full);

        row("StreamingLLM",
            bench_ctx.run(
                sim::cacheConfigFor(task, kv::Policy::Streaming)));
        row("H2O",
            bench_ctx.run(sim::cacheConfigFor(task, kv::Policy::H2O)));
        row("QuaRot KV4", bench_ctx.run(kv::makeQuaRotConfig()));

        auto kelle_cfg = sim::cacheConfigFor(task, kv::Policy::Aerp);
        edram::RefreshFaultModel faults(refresh, mc.seed + 7);
        row("Kelle (AERP+2DRP)", bench_ctx.run(kelle_cfg, &faults));
    });

    for (const auto &cell : cells) {
        bench::banner("Table 2: " + cell.model->cfg.name + " on " +
                      cell.task->name);
        Table t({"method", "PPL (down)", "Agreement@1 (up)",
                 "KV bytes vs full"});
        for (const auto &r : cell.rows)
            t.addRow(r);
        t.print();
    }

    bench::note("paper Table 2 shape: Kelle ~ H2O ~ QuaRot ~ FP16, all "
                "well above StreamingLLM at the same budget; Kelle "
                "keeps this while also absorbing 2DRP retention faults");
    return 0;
}
