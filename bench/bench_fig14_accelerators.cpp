/**
 * @file
 * Figure 14 reproduction: Kelle+eDRAM vs other LLM accelerators
 * (Jetson Orin FP8, LLM.npu, DynaX, COMET), normalized to Jetson,
 * across the four serving tasks.
 */

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace kelle;

int
main()
{
    const auto model = model::llama2_7b();

    bench::banner("Figure 14: comparison with LLM accelerators "
                  "(normalized to Jetson, LLaMA2-7B, batch 16)");
    Table t({"task", "system", "speedup", "energy_eff"});
    for (const auto &task : sim::hardwareTasks()) {
        for (const auto &r : sim::runFigure14(task, model, 16)) {
            t.addRow({task.name, r.system, Table::mult(r.speedup),
                      Table::mult(r.energyEfficiency)});
        }
    }
    t.print();
    bench::note("paper Figure 14 shape: LLM.npu/DynaX give flat "
                "1.6-1.9x (prefill-side optimizations); COMET grows "
                "2.1-4.5x with decode length (KV compression); Kelle "
                "grows 2.3-7.6x and leads everywhere");
    return 0;
}
