/**
 * @file
 * Figure 16 reproduction:
 *  (a) roofline view of recomputation: operational intensity and
 *      achieved performance for No-Recomp / Recomp (auto) /
 *      Over-Recomp on PG19;
 *  (b) energy breakdown under long input sequences (2K-16K input x
 *      128/512/2K output), split into prefill (P) and decode (D)
 *      stages.
 */

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace kelle;
using namespace kelle::accel;

int
main()
{
    // ---- (a) roofline ---------------------------------------------------
    bench::banner("Figure 16a: recomputation roofline (LLaMA2-7B, "
                  "PG19, batch 16)");
    sim::Task task = sim::pg19();
    const auto w = sim::makeWorkload(task, model::llama2_7b(), 16);

    Table a({"setting", "op intensity (ops/DRAM byte)",
             "achieved GOPS", "decode latency (s)"});
    auto run = [&](const char *name, RecomputeMode mode,
                   double popular) {
        auto sys = kelleEdramSystem(task.budget);
        sys.kv.recompute = mode;
        sys.kv.popularFraction = popular;
        const auto r = simulate(sys, w);
        a.addRow({name, Table::num(r.opIntensity(), 1),
                  Table::num(r.achievedOpsPerSec() / 1e9, 1),
                  Table::num(r.decodeLatency.sec(), 1)});
    };
    run("No Recomp", RecomputeMode::None, 0.35);
    run("Recomp (auto)", RecomputeMode::Auto, 0.35);
    run("Over Recomp", RecomputeMode::Over, 0.9);
    a.print();
    const auto &tech = kelleTech();
    std::printf("roofline: peak %.1f GOPS, DRAM ridge at %.1f ops/B\n",
                2.0 * tech.rsa.peakMacsPerSec() * tech.rsa.utilization /
                    1e9,
                2.0 * tech.rsa.peakMacsPerSec() * tech.rsa.utilization /
                    tech.dram.bandwidth().value);
    bench::note("paper 16a: moderate recomputation raises effective "
                "bandwidth (higher intensity, higher performance); "
                "over-recomputation crosses the ridge and becomes "
                "compute-bound (performance drops)");

    // ---- (b) long inputs ---------------------------------------------
    bench::banner("Figure 16b: long-input energy breakdown "
                  "(LLaMA2-7B, PG19-style, batch 16)");
    Table b({"in-out", "P compute", "P dram", "D compute+buf",
             "D dram", "eff vs Org+SRAM"});
    for (std::size_t in_len : {2048u, 4096u, 8192u, 16384u}) {
        for (std::size_t out_len : {128u, 512u, 2048u}) {
            Workload lw;
            lw.model = model::llama2_7b();
            lw.ctxLen = in_len;
            lw.decLen = out_len;
            lw.batch = 16;
            auto sys = kelleEdramSystem(4096);
            const auto r = simulate(sys, lw);
            const auto base = simulate(originalSramSystem(), lw);
            const auto &p = r.prefillEnergy;
            const auto &d = r.decodeEnergy;
            const double tot = r.totalEnergy().j();
            b.addRow({std::to_string(in_len / 1024) + "K-" +
                          std::to_string(out_len),
                      Table::pct((p.rsa + p.sfu).j() / tot),
                      Table::pct(p.dram.j() / tot),
                      Table::pct((d.rsa + d.sfu + d.kvMem +
                                  d.weightSram + d.refresh).j() / tot),
                      Table::pct(d.dram.j() / tot),
                      Table::mult(compare(base, r).energyEfficiency)});
        }
    }
    b.print();
    bench::note("paper 16b: long input + short output is prefill/"
                "compute dominated (~2.1x gain); growing outputs shift "
                "energy to decode DRAM access (~5.6x gain)");
    return 0;
}
