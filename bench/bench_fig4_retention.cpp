/**
 * @file
 * Figure 4 reproduction: 65 nm eDRAM retention failure rate vs refresh
 * interval at 105 C, plus the paper's annotated points and the 2DRP
 * interval set of Section 7.1 (average failure rate ~2e-3, average
 * interval 1.05 ms).
 */

#include <cstdio>

#include "common/table.hpp"
#include "edram/refresh_policy.hpp"
#include "edram/retention.hpp"

using namespace kelle;

int
main()
{
    const auto retention = edram::RetentionModel::paper65nm();

    std::printf("=== Figure 4: retention failure rate vs refresh "
                "interval (65 nm, 105 C) ===\n\n");

    Table sweep({"interval_us", "failure_rate"});
    for (double us : {1.0, 4.5, 10.0, 45.0, 100.0, 250.0, 784.0, 1778.0,
                      4000.0, 9120.0, 20000.0, 100000.0}) {
        sweep.addRow({Table::num(us, 1),
                      Table::num(retention.failureProbability(
                                     Time::micros(us)), 8)});
    }
    sweep.print("failure-rate sweep (paper-annotated points included):");

    Table anchors({"paper point", "interval", "paper rate", "model rate"});
    anchors.addRow({"retention floor", "45 us", "1e-6",
                    Table::num(retention.failureProbability(
                                   Time::micros(45)), 8)});
    anchors.addRow({"mid", "1778 us", "1e-3",
                    Table::num(retention.failureProbability(
                                   Time::micros(1778)), 6)});
    anchors.addRow({"tail", "9120 us", "~1e-2",
                    Table::num(retention.failureProbability(
                                   Time::micros(9120)), 6)});
    anchors.print("calibration anchors:");

    const auto intervals = edram::RefreshIntervals::paper2drp();
    const edram::TwoDRefreshPolicy policy(intervals, retention);
    Table groups({"2DRP group", "interval_ms", "failure_rate"});
    for (std::size_t g = 0; g < edram::kNumRefreshGroups; ++g) {
        const auto group = static_cast<edram::RefreshGroup>(g);
        groups.addRow({edram::toString(group),
                       Table::num(intervals.of(group).ms(), 2),
                       Table::num(policy.failureRate(group), 6)});
    }
    groups.print("2DRP deployment set (Section 7.1):");

    std::printf("average refresh interval (harmonic): %.3f ms "
                "(paper: 1.05 ms)\n",
                intervals.averageInterval().ms());
    std::printf("average retention failure rate: %.2e (paper: ~2e-3)\n",
                policy.averageFailureRate());
    std::printf("iso-accuracy uniform interval: %.0f us\n",
                policy.isoAccuracyUniformInterval().us());
    return 0;
}
