/**
 * @file
 * Table 6 reproduction: Kelle combined with QuaRot-style quantization.
 * W8A16 (deployed Kelle) vs W4A8 (QuaRot-quantized weights, 8-bit KV
 * and activations) on the WK2/A-c/A-e/PQ proxies.
 */

#include "bench_util.hpp"
#include "common/table.hpp"
#include "edram/fault_model.hpp"
#include "sim/experiments.hpp"

using namespace kelle;

int
main()
{
    const edram::TwoDRefreshPolicy refresh(
        edram::RefreshIntervals::paper2drp(),
        edram::RetentionModel::paper65nm());

    const std::vector<std::pair<const char *, sim::Task>> tasks = {
        {"WK2-proxy", sim::scaledForTiny(sim::wikitext2(), 160)},
        {"LA-proxy", sim::scaledForTiny(sim::lambada(), 128)},
    };

    bench::banner("Table 6: Kelle W8A16 vs Kelle W4A8 (QuaRot KV/act "
                  "quantization)");
    Table t({"task", "metric", "Kelle W8A16", "Kelle W4A8"});
    for (const auto &[name, task] : tasks) {
        sim::AccuracyBench bench_ctx(task, /*seed=*/4242);

        auto w8a16 = sim::cacheConfigFor(task, kv::Policy::Aerp);
        edram::RefreshFaultModel inj1(refresh, 1);
        const auto r16 = bench_ctx.run(w8a16, &inj1);

        // W4A8: KV vectors quantized to 8-bit through the QuaRot path
        // (rotation spreads outliers before quantization).
        auto w4a8 = w8a16;
        w4a8.precision = kv::KvPrecision::Int8;
        edram::RefreshFaultModel inj2(refresh, 2);
        const auto r8 = bench_ctx.run(w4a8, &inj2);

        t.addRow({name, "PPL (down)", Table::num(r16.perplexity, 3),
                  Table::num(r8.perplexity, 3)});
        t.addRow({name, "Agreement@1 (up)",
                  Table::pct(r16.agreementTop1),
                  Table::pct(r8.agreementTop1)});
        t.addRow({name, "KV bytes (down)",
                  Table::num(r16.residentKvBytes / 1024.0, 1) + " KiB",
                  Table::num(r8.residentKvBytes / 1024.0, 1) + " KiB"});
    }
    t.print();
    bench::note("paper Table 6: quantization to W4A8 costs a small "
                "accuracy delta (WK2 5.74 -> 6.51) while halving KV "
                "storage — Kelle composes with quantization");
    return 0;
}
