/**
 * @file
 * Figure 8 reproduction: LLM quality under KV-cache bit-flip errors on
 * the functional substrate (WikiText-2-proxy stream).
 *
 *  (a) uniform error injection across all stored bits;
 *  (b) errors confined to high-score (HST) vs low-score (LST) tokens;
 *  (c) errors confined to MSBs (bits 15-8) vs LSBs (bits 7-0).
 *
 * The absolute PPL scale differs from LLaMA2-7B (a 4-layer, 8-head
 * substrate has far less redundancy than a 32-layer, 32-head model),
 * so the substrate is swept over rates around the paper's operating
 * points and every condition is averaged over three independently
 * seeded substrates/streams. The paper's *shapes* — tolerance below
 * ~1e-3, HST flips worse than LST, MSB flips worse than LSB — are
 * what the numbers here demonstrate.
 */

#include "bench_util.hpp"
#include "common/table.hpp"
#include "edram/fault_model.hpp"
#include "sim/experiments.hpp"

using namespace kelle;

namespace {

using Rates = std::array<double, edram::kNumRefreshGroups>;

auto
makeFactory(const Rates &rates)
{
    return [rates](std::uint64_t seed) {
        return std::make_unique<edram::RefreshFaultModel>(
            edram::RefreshFaultModel::withRates(rates, seed));
    };
}

} // namespace

int
main()
{
    sim::Task task = sim::scaledForTiny(sim::wikitext2(), 160);
    sim::MultiSeedBench bench_ctx(task, /*seeds=*/3, /*base=*/2024);
    std::printf("baseline (fault-free full KV) PPL = %.3f "
                "(3-seed average)\n",
                bench_ctx.baselinePerplexity());

    const auto aerp_cfg = sim::cacheConfigFor(task, kv::Policy::Aerp);
    const auto clean = bench_ctx.run(aerp_cfg);

    // ---- (a) uniform -------------------------------------------------
    bench::banner("Figure 8a: PPL vs uniform bit-flip error rate");
    Table a({"error_rate", "PPL", "delta vs clean"});
    a.addRow({"0", Table::num(clean.perplexity, 3), "0.000"});
    for (double p : {1e-5, 1e-4, 1e-3, 1e-2, 5e-2}) {
        const auto r = bench_ctx.run(aerp_cfg,
                                     makeFactory({p, p, p, p}));
        a.addRow({Table::num(p, 5), Table::num(r.perplexity, 3),
                  Table::num(r.perplexity - clean.perplexity, 3)});
    }
    a.print();
    bench::note("paper 8a: PPL increase < 0.1 below 1e-3, then grows "
                "sharply");

    // ---- (b) HST vs LST ----------------------------------------------
    bench::banner("Figure 8b: errors on HST vs LST tokens only");
    Table b({"error_rate", "PPL (HST hit)", "PPL (LST hit)"});
    for (double p : {5e-3, 2e-2, 5e-2}) {
        const auto rh = bench_ctx.run(aerp_cfg,
                                      makeFactory({p, p, 0, 0}));
        const auto rl = bench_ctx.run(aerp_cfg,
                                      makeFactory({0, 0, p, p}));
        b.addRow({Table::num(p, 4), Table::num(rh.perplexity, 3),
                  Table::num(rl.perplexity, 3)});
    }
    b.print();
    bench::note("paper 8b: corrupting high-score tokens degrades PPL "
                "more than low-score tokens (justifies the HST "
                "refresh-frequency bias of 2DRP)");

    // ---- (c) MSB vs LSB ----------------------------------------------
    bench::banner("Figure 8c: errors on MSBs (bits 15-8) vs LSBs "
                  "(bits 7-0) only");
    Table c({"error_rate", "PPL (MSB hit)", "PPL (LSB hit)"});
    for (double p : {5e-3, 2e-2, 5e-2}) {
        const auto rm = bench_ctx.run(aerp_cfg,
                                      makeFactory({p, 0, p, 0}));
        const auto rl = bench_ctx.run(aerp_cfg,
                                      makeFactory({0, p, 0, p}));
        c.addRow({Table::num(p, 4), Table::num(rm.perplexity, 3),
                  Table::num(rl.perplexity, 3)});
    }
    c.print();
    bench::note("paper 8c: MSB flips hurt far more than LSB flips "
                "(justifies the bit-position refresh bias of 2DRP)");
    return 0;
}
