/**
 * @file
 * Table 3 reproduction: accuracy vs KV cache budget N' for the Kelle
 * policy, plus the per-head vs per-token eviction ablation DESIGN.md
 * calls out. The paper sweeps N' in {512..16} on LLaMA2-7B; the
 * functional substrate sweeps the same budget-to-sequence ratios.
 */

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace kelle;

int
main()
{
    // Sequence ~192 tokens; budgets mirror the paper's 512..16 sweep
    // relative to its 2048-token WK2 contexts.
    sim::Task task = sim::scaledForTiny(sim::wikitext2(), 192);
    sim::AccuracyBench bench_ctx(task, /*seed=*/555);

    bench::banner("Table 3: accuracy vs KV budget N' (Kelle AERP, "
                  "fault-free)");
    Table t({"N'", "PPL (down)", "Agreement@1 (up)"});

    const auto full = bench_ctx.run(kv::makeFullConfig());
    t.addRow({"Full", Table::num(full.perplexity, 3),
              Table::pct(full.agreementTop1)});

    for (std::size_t budget : {96u, 64u, 48u, 32u, 24u, 16u}) {
        auto cfg = sim::cacheConfigFor(task, kv::Policy::Aerp);
        cfg.budget = budget;
        // Shrink protected regions with the budget, as the paper does
        // per task (Section 7.1).
        cfg.recentWindow = std::max<std::size_t>(4, budget / 3);
        cfg.sinkTokens = std::max<std::size_t>(2, budget / 16);
        const auto r = bench_ctx.run(cfg);
        t.addRow({std::to_string(budget), Table::num(r.perplexity, 3),
                  Table::pct(r.agreementTop1)});
    }
    t.print();
    bench::note("paper Table 3: accuracy declines slowly until "
                "N' < 128 (of 2048), then drops sharply — i.e. below "
                "~1/16 of the sequence budget");

    // ---- ablation: per-head vs per-token eviction ---------------------
    bench::banner("Ablation: per-head eviction (paper) vs per-token "
                  "eviction (all heads evict the same token)");
    Table ab({"budget", "per-head PPL", "per-token PPL (proxy)",
              "per-head Agr", "per-token Agr"});
    for (std::size_t budget : {48u, 24u}) {
        auto per_head = sim::cacheConfigFor(task, kv::Policy::Aerp);
        per_head.budget = budget;
        per_head.recentWindow = budget / 3;
        per_head.sinkTokens = 2;
        const auto rh = bench_ctx.run(per_head);

        // Per-token proxy: H2O-style single-ranking eviction applied
        // uniformly (no per-head divergence, no recomputation).
        auto per_token = per_head;
        per_token.recompute = false;
        per_token.useRawLogits = false;
        const auto rt = bench_ctx.run(per_token);
        ab.addRow({std::to_string(budget), Table::num(rh.perplexity, 3),
                   Table::num(rt.perplexity, 3),
                   Table::pct(rh.agreementTop1),
                   Table::pct(rt.agreementTop1)});
    }
    ab.print();
    return 0;
}
