/**
 * @file
 * Table 3 reproduction: accuracy vs KV cache budget N' for the Kelle
 * policy, plus the per-head vs per-token eviction ablation DESIGN.md
 * calls out. The paper sweeps N' in {512..16} on LLaMA2-7B; the
 * functional substrate sweeps the same budget-to-sequence ratios.
 */

#include "bench_util.hpp"
#include "common/arg_parser.hpp"
#include "common/table.hpp"
#include "serving/scheduler.hpp"
#include "sim/experiments.hpp"

using namespace kelle;

int
main(int argc, char **argv)
{
    common::ArgParser args("bench_table3_budget",
                           "Table 3 accuracy-vs-budget sweep");
    args.addBool("paged", false,
                 "add the paged KV pool axis: a multi-turn serving "
                 "knee sweep of peak resident N', contiguous vs "
                 "paged + shared prefixes, over the same budgets");
    if (!args.parse(argc, argv))
        return args.exitCode();
    // Sequence ~192 tokens; budgets mirror the paper's 512..16 sweep
    // relative to its 2048-token WK2 contexts.
    sim::Task task = sim::scaledForTiny(sim::wikitext2(), 192);
    sim::AccuracyBench bench_ctx(task, /*seed=*/555);

    bench::banner("Table 3: accuracy vs KV budget N' (Kelle AERP, "
                  "fault-free)");
    Table t({"N'", "PPL (down)", "Agreement@1 (up)"});

    const auto full = bench_ctx.run(kv::makeFullConfig());
    t.addRow({"Full", Table::num(full.perplexity, 3),
              Table::pct(full.agreementTop1)});

    for (std::size_t budget : {96u, 64u, 48u, 32u, 24u, 16u}) {
        auto cfg = sim::cacheConfigFor(task, kv::Policy::Aerp);
        cfg.budget = budget;
        // Shrink protected regions with the budget, as the paper does
        // per task (Section 7.1).
        cfg.recentWindow = std::max<std::size_t>(4, budget / 3);
        cfg.sinkTokens = std::max<std::size_t>(2, budget / 16);
        const auto r = bench_ctx.run(cfg);
        t.addRow({std::to_string(budget), Table::num(r.perplexity, 3),
                  Table::pct(r.agreementTop1)});
    }
    t.print();
    bench::note("paper Table 3: accuracy declines slowly until "
                "N' < 128 (of 2048), then drops sharply — i.e. below "
                "~1/16 of the sequence budget");

    // ---- ablation: per-head vs per-token eviction ---------------------
    bench::banner("Ablation: per-head eviction (paper) vs per-token "
                  "eviction (all heads evict the same token)");
    Table ab({"budget", "per-head PPL", "per-token PPL (proxy)",
              "per-head Agr", "per-token Agr"});
    for (std::size_t budget : {48u, 24u}) {
        auto per_head = sim::cacheConfigFor(task, kv::Policy::Aerp);
        per_head.budget = budget;
        per_head.recentWindow = budget / 3;
        per_head.sinkTokens = 2;
        const auto rh = bench_ctx.run(per_head);

        // Per-token proxy: H2O-style single-ranking eviction applied
        // uniformly (no per-head divergence, no recomputation).
        auto per_token = per_head;
        per_token.recompute = false;
        per_token.useRawLogits = false;
        const auto rt = bench_ctx.run(per_token);
        ab.addRow({std::to_string(budget), Table::num(rh.perplexity, 3),
                   Table::num(rt.perplexity, 3),
                   Table::pct(rh.agreementTop1),
                   Table::pct(rt.agreementTop1)});
    }
    ab.print();

    // ---- paged axis: multi-turn knee sweep over the same budgets ------
    if (args.getBool("paged")) {
        bench::banner(
            "Paged KV pool: peak resident N' across the budget knee "
            "(multi-turn sessions, tight 256-token pool)");

        serving::ServingConfig base;
        base.model = model::tinyLm();
        base.system = accel::kelleEdramSystem(2048);
        base.policy = serving::SchedulePolicy::ContinuousBatching;
        base.maxBatch = 12;
        base.poolTokens = 256;
        base.highWatermark = 0.85;
        base.traffic.ratePerSec = 2000.0;
        base.traffic.numRequests = 32;
        base.traffic.seed = 42;
        base.traffic.mix = {
            {sim::scaledForTiny(sim::lambada(), 96), 1.0},
            {sim::scaledForTiny(sim::triviaQa(), 128), 1.0}};
        base.traffic.sessions = 1;
        base.traffic.sessionPrefixFrac = 0.9;

        Table k({"N'", "contig peak N'", "paged+shared peak N'",
                 "resident mult", "prefix-hit tok", "clips"});
        for (std::size_t budget : {96u, 64u, 48u, 32u}) {
            serving::ServingConfig contig = base;
            contig.budgetOverride = budget;
            serving::ServingConfig paged = contig;
            paged.paged.enabled = true;
            paged.paged.blockTokens = 8;
            const auto c = serving::Scheduler(contig).run();
            const auto p = serving::Scheduler(paged).run();
            k.addRow({std::to_string(budget),
                      std::to_string(c.peakLogicalTokens),
                      std::to_string(p.peakLogicalTokens),
                      Table::mult(
                          static_cast<double>(p.peakLogicalTokens) /
                          static_cast<double>(std::max<std::size_t>(
                              1, c.peakLogicalTokens))),
                      std::to_string(p.paged.prefixHitTokens),
                      std::to_string(p.paged.budgetClips)});
        }
        k.print();
        bench::note(
            "same trace and pool per row; the shared session prompt "
            "(90% of each context) is stored once per session, so the "
            "paged pool keeps more logical tokens resident exactly "
            "where Table 3 says shrinking N' starts costing accuracy");
    }
    return 0;
}
