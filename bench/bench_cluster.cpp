/**
 * @file
 * Multi-device edge-cluster serving: fleet size x dispatch policy x
 * heterogeneity (eDRAM- vs SRAM-backed devices) on the layer-6
 * `ClusterEngine`, one shared request stream over N per-device KV
 * pools.
 *
 * The headline section serves one seeded trace on the configured fleet
 * under every selected dispatch policy and breaks the first policy's
 * run down per device. The knee study serves a 2-device heterogeneous
 * fleet at the fleet's saturation knee, where routing by free KV
 * budget (join-shortest-kv) must beat blind rotation (round-robin) on
 * p95 TTFT — the asymmetric-pool setting the co-design implies. The
 * preemption study toggles deadline-doomed budget reclamation on the
 * same fleet. The sweep fans devices x dispatch x fleet cells across
 * cores via common::parallelFor; every number is a pure function of
 * the flags and rerunning with the same seed is bit-identical.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "accel/capacity.hpp"
#include "bench_util.hpp"
#include "cluster/cluster_engine.hpp"
#include "common/arg_parser.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace kelle;

namespace {

/** The §8.4.1 KV pool of one device (capacity analysis). */
std::size_t
analysisPoolTokens(const accel::SystemConfig &sys,
                   const model::ModelConfig &m)
{
    accel::CapacitySpec spec;
    spec.dramCapacity = sys.tech.dram.capacity();
    spec.weightBits = sys.tech.weightBits;
    spec.kvBits = sys.kv.kvBits;
    return accel::maxSupportedTokens(m, spec).maxTokens;
}

struct FleetSpec
{
    std::string label;
    std::vector<cluster::DeviceSpec> devices;
};

/**
 * Build the benchmark fleet: homogeneous Kelle+eDRAM devices, or the
 * alternating eDRAM/SRAM mix. SRAM-backed devices default to half the
 * eDRAM KV pool (`--sram-pool 0`): at matched area the SRAM macro
 * holds a fraction of the eDRAM KV bytes (§3), so the device class is
 * provisioned KV-tight — the asymmetry dispatch has to balance.
 */
FleetSpec
makeFleet(std::size_t n, bool hetero, std::size_t pool_tokens,
          std::size_t sram_pool_tokens, std::size_t max_batch,
          const model::ModelConfig &m)
{
    const auto edram_sys = accel::kelleEdramSystem(2048);
    const std::size_t edram_pool =
        pool_tokens ? pool_tokens : analysisPoolTokens(edram_sys, m);
    if (!hetero) {
        FleetSpec f;
        f.label = "homog eDRAM";
        f.devices = cluster::homogeneousFleet(n, edram_sys, edram_pool,
                                              max_batch);
        return f;
    }
    FleetSpec f;
    f.label = "hetero eDRAM/SRAM";
    const std::size_t sram_pool =
        sram_pool_tokens ? sram_pool_tokens : edram_pool / 2;
    f.devices = cluster::heteroEdramSramFleet(n, 2048, edram_pool,
                                              sram_pool, max_batch);
    return f;
}

cluster::ClusterReport
runCell(cluster::ClusterConfig cfg, cluster::DispatchKind dispatch)
{
    cfg.dispatch = dispatch;
    cluster::ClusterEngine engine(cfg);
    return engine.run();
}

void
addClusterRow(Table &t, const std::string &label,
              const cluster::ClusterReport &rep)
{
    const auto &s = rep.aggregate.summary;
    const double total_j = s.energy.total().j();
    t.addRow({label, std::to_string(s.completed),
              std::to_string(s.rejected),
              toString(Time::seconds(s.ttftP50)),
              toString(Time::seconds(s.ttftP95)),
              toString(Time::seconds(s.tpotMean)),
              Table::pct(s.sloTtftAttainment),
              Table::pct(s.sloAttainment),
              Table::num(s.goodputTokensPerSec, 1),
              std::to_string(s.preemptions),
              Table::num(rep.loadImbalanceCv, 2),
              Table::pct(rep.meanKvPeakUtilization),
              Table::pct(total_j > 0.0 ? rep.refreshEnergyJ / total_j
                                       : 0.0),
              toString(Energy::joules(s.energyPerToken))});
}

const std::vector<std::string> kClusterHeader = {
    "dispatch", "done", "rej", "TTFT p50", "TTFT p95", "TPOT",
    "SLO ttft", "SLO all", "goodput tok/s", "preempt", "imbalance",
    "KV peak", "refresh share", "E/token"};

} // namespace

int
main(int argc, char **argv)
{
    common::ArgParser args(
        "bench_cluster",
        "multi-device edge cluster: fleet size x dispatch policy x "
        "eDRAM/SRAM heterogeneity");
    args.addDouble("rate", 0.04, "mean arrival rate in req/s (whole "
                                 "fleet)");
    args.addInt("devices", 2, "fleet size for the headline section");
    args.addString("dispatch", "all",
                   cluster::dispatchPolicyNames() + " | all");
    args.addBool("hetero", false,
                 "headline fleet alternates eDRAM/SRAM devices");
    args.addString("policy", "contbatch",
                   "per-device scheduling policy: " +
                       serving::schedulePolicyNames());
    args.addInt("chunk-tokens", 0,
                "prefill chunk size (0 = whole prompt per step)");
    args.addDouble("chunk-slack", 0.0,
                   "edf-chunked slack-aware alternation fraction "
                   "(0 = unconditional alternation)");
    args.addBool("preempt", false,
                 "reclaim KV grants of deadline-doomed decodes and "
                 "re-dispatch the victims");
    args.addDouble("slo-tpot", 0.0,
                   "override the per-request TPOT target in seconds "
                   "(0 = trace default); tight targets doom stalled "
                   "decodes, which is what --preempt reclaims");
    args.addInt("requests", 48, "trace length in requests");
    args.addInt("seed", 42, "arrival-trace seed");
    args.addInt("maxbatch", 16, "per-device decode-batch cap");
    args.addInt("pool", 0,
                "per-device KV pool tokens (0 = capacity analysis)");
    args.addInt("sram-pool", 0,
                "KV pool tokens of SRAM-backed devices in hetero "
                "fleets (0 = half the eDRAM pool)");
    args.addInt("steps", 0,
                "max engine steps per device (0 = run to completion)");
    args.addInt("threads", 1,
                "worker lanes per cluster run (1 = serial engine, "
                "0 = hardware threads); output is bit-identical for "
                "every value");
    args.addBool("burst", false, "bursty (MMPP) arrivals");
    args.addBool("study", true,
                 "run the knee (join-shortest-kv vs round-robin) and "
                 "preemption studies");
    args.addBool("sweep", true,
                 "run the devices x dispatch x fleet sweep");
    args.addBool("fastsim", true,
                 "fast-forward silent decode windows (off replays "
                 "every boundary as an event; output is identical)");
    args.addString("trace-out", "",
                   "write the first headline cell's request-lifecycle "
                   "trace as Chrome trace-event JSON (Perfetto)");
    args.addString("metrics-out", "",
                   "dump the first headline cell's metrics registry "
                   "(.csv = sampled time series, else JSON)");
    args.addDouble("metrics-interval", 60.0,
                   "time-series sampling interval for --metrics-out "
                   "CSV, sim seconds");
    args.addBool("attribution", false,
                 "per-request latency waterfalls on the first "
                 "headline cell: print the SLO miss-cause breakdown, "
                 "add attribution.* metrics to --metrics-out and SLO "
                 "targets to --trace-out");
    args.addBool("faults", false,
                 "seeded fault injection (src/faults): crashes, "
                 "slowdowns and pool shrinks with recovery; adds the "
                 "fault report and the goodput-vs-availability study");
    args.addDouble("mtbf", 120.0,
                   "mean time between faults per device, sim seconds");
    args.addDouble("mttr", 15.0,
                   "mean time to recovery per fault, sim seconds");
    args.addInt("retries", 3,
                "fault re-dispatch budget per request before a "
                "permanent failure");
    if (!args.parse(argc, argv))
        return args.exitCode();

    serving::SchedulePolicy policy;
    if (!serving::parseSchedulePolicy(args.getString("policy"),
                                      &policy)) {
        std::fprintf(stderr, "unknown --policy '%s' (%s)\n",
                     args.getString("policy").c_str(),
                     serving::schedulePolicyNames().c_str());
        return 1;
    }
    std::vector<cluster::DispatchKind> dispatches;
    const std::string dispatch_text = args.getString("dispatch");
    if (dispatch_text == "all") {
        dispatches = cluster::allDispatchPolicies();
    } else {
        cluster::DispatchKind k;
        if (!cluster::parseDispatchPolicy(dispatch_text, &k)) {
            std::fprintf(stderr, "unknown --dispatch '%s' (%s|all)\n",
                         dispatch_text.c_str(),
                         cluster::dispatchPolicyNames().c_str());
            return 1;
        }
        dispatches = {k};
    }

    cluster::ClusterConfig base;
    base.engine.traffic.ratePerSec = args.getDouble("rate");
    base.engine.traffic.numRequests = args.getSize("requests");
    base.engine.traffic.seed =
        static_cast<std::uint64_t>(args.getInt("seed"));
    base.engine.traffic.process = args.getBool("burst")
                               ? serving::ArrivalProcess::Bursty
                               : serving::ArrivalProcess::Poisson;
    base.engine.policy = policy;
    base.engine.chunkTokens = args.getSize("chunk-tokens");
    base.engine.chunkSlackFrac = args.getDouble("chunk-slack");
    base.engine.preempt.enabled = args.getBool("preempt");
    if (args.getDouble("slo-tpot") > 0.0)
        base.engine.traffic.slo.tpotSec = args.getDouble("slo-tpot");
    base.engine.maxEngineSteps = args.getSize("steps");
    base.engine.fastSim = args.getBool("fastsim");
    base.threads = args.getSize("threads");
    base.faults.enabled = args.getBool("faults");
    base.faults.mtbfSec = args.getDouble("mtbf");
    base.faults.mttrSec = args.getDouble("mttr");
    base.faults.maxRetries =
        static_cast<std::uint32_t>(args.getInt("retries"));

    const std::size_t n_devices = args.getSize("devices");
    const std::size_t max_batch = args.getSize("maxbatch");
    const std::size_t pool = args.getSize("pool");
    const std::size_t sram_pool = args.getSize("sram-pool");
    const FleetSpec headline_fleet =
        makeFleet(n_devices, args.getBool("hetero"), pool, sram_pool,
                  max_batch, base.engine.model);
    base.devices = headline_fleet.devices;

    bench::banner(
        "Cluster: " + std::to_string(base.engine.traffic.numRequests) +
        " requests at " + Table::num(base.engine.traffic.ratePerSec, 4) +
        " req/s (" + toString(base.engine.traffic.process) + "), " +
        std::to_string(n_devices) + " devices (" +
        headline_fleet.label + "), per-device policy " +
        toString(base.engine.policy) + ", seed " +
        std::to_string(base.engine.traffic.seed));

    // ---- Headline: the configured fleet under every dispatch ------
    // The trace recorder rides on the first dispatch cell only: each
    // cell runs on its own parallelFor lane, so exactly one lane ever
    // touches the recorder and the trace bytes stay a pure function of
    // that cell's config.
    const std::string trace_out = args.getString("trace-out");
    const std::string metrics_out = args.getString("metrics-out");
    obs::TraceRecorder recorder;
    obs::LatencyWaterfall waterfall;
    const bool attribution = args.getBool("attribution");
    const bool record = !trace_out.empty() || !metrics_out.empty();
    std::vector<cluster::ClusterReport> runs(dispatches.size());
    common::parallelFor(dispatches.size(), [&](std::size_t i) {
        cluster::ClusterConfig cfg = base;
        if (i == 0 && record)
            cfg.engine.trace = &recorder;
        if (i == 0 && attribution)
            cfg.engine.waterfall = &waterfall;
        runs[i] = runCell(cfg, dispatches[i]);
    });
    Table headline(kClusterHeader);
    for (std::size_t i = 0; i < dispatches.size(); ++i)
        addClusterRow(headline, toString(dispatches[i]), runs[i]);
    headline.print("per-device pool " +
                   std::to_string(base.devices.front().poolTokens) +
                   " KV tokens on " + base.devices.front().name +
                   "; aggregate percentiles over the union of "
                   "completed requests");

    // Per-device breakdown of the first dispatch policy's run. The
    // busy-fraction column and the caption's imbalance CV are read
    // back out of the metrics registry the same roll-up feeds, so the
    // printed figures and a --metrics-out dump cannot diverge.
    obs::MetricsRegistry fleet_metrics;
    cluster::exportClusterMetrics(runs.front(), fleet_metrics);
    {
        Table breakdown({"device", "dispatched", "done", "TTFT p95",
                         "busy", "busy frac", "KV peak", "pool tok",
                         "refresh"});
        for (const auto &d : runs.front().devices) {
            const std::string key =
                (d.name.empty() ? "device" : d.name) + ".busy_frac";
            breakdown.addRow(
                {d.name, std::to_string(d.dispatched),
                 std::to_string(d.report.summary.completed),
                 toString(Time::seconds(d.report.summary.ttftP95)),
                 toString(Time::seconds(d.busySec)),
                 Table::pct(fleet_metrics.gauge(key, 0.0)),
                 Table::pct(d.kvPeakUtilization),
                 std::to_string(d.report.poolTokens),
                 toString(d.report.summary.energy.refresh)});
        }
        breakdown.print(
            "device breakdown under " + toString(dispatches.front()) +
            "; imbalance CV " +
            Table::num(
                fleet_metrics.gauge("cluster.load_imbalance_cv", 0.0),
                2) +
            " (busy fractions are of the cluster makespan)");
    }

    if (base.faults.enabled) {
        const cluster::ClusterFaultReport &f = runs.front().faults;
        const double avail =
            fleet_metrics.gauge("cluster.availability", 1.0);
        Table ft({"device", "crashes", "downtime", "down frac"});
        const double mk =
            runs.front().aggregate.summary.makespan.sec();
        for (std::size_t d = 0; d < f.devices.size(); ++d) {
            ft.addRow(
                {runs.front().devices[d].name,
                 std::to_string(f.devices[d].crashes),
                 toString(Time::seconds(f.devices[d].downtimeSec)),
                 Table::pct(mk > 0.0 ? f.devices[d].downtimeSec / mk
                                     : 0.0)});
        }
        ft.print(
            "fault report under " + toString(dispatches.front()) +
            ": availability " + Table::pct(avail) + ", " +
            std::to_string(f.crashes) + " crashes / " +
            std::to_string(f.slowdowns) + " slowdowns / " +
            std::to_string(f.shrinks) + " pool shrinks, lost " +
            std::to_string(f.lostTokens) + " KV tokens, " +
            std::to_string(f.retries) + " retries (" +
            std::to_string(f.retrySuccesses) + " completed), " +
            std::to_string(f.shedRequests) + " shed, " +
            std::to_string(f.permanentFailures) +
            " permanent failures");
    }

    if (attribution) {
        std::vector<std::string> names;
        for (const auto &d : runs.front().devices)
            names.push_back(d.name);
        bench::printAttribution(
            runs.front().aggregate.attribution, names,
            toString(dispatches.front()) + " dispatch");
    }

    if (!trace_out.empty()) {
        if (recorder.writeJson(trace_out))
            std::printf("\nwrote trace: %s (%s dispatch; load at "
                        "https://ui.perfetto.dev)\n",
                        trace_out.c_str(),
                        toString(dispatches.front()).c_str());
    }
    if (!metrics_out.empty()) {
        if (attribution)
            obs::exportAttributionMetrics(waterfall, fleet_metrics);
        fleet_metrics.ingestTrace(recorder);
        if (fleet_metrics.writeFile(
                metrics_out, args.getDouble("metrics-interval")))
            std::printf("\nwrote metrics: %s\n", metrics_out.c_str());
    }

    // ---- Knee study: 2-device hetero fleet at the saturation knee -
    if (args.getBool("study")) {
        cluster::ClusterConfig knee = base;
        knee.devices = makeFleet(2, true, pool, sram_pool, max_batch,
                                 base.engine.model)
                           .devices;
        // The knee sits where the offered load crosses what the
        // asymmetric fleet can drain: queueing shows in the TTFT tail
        // but the run still completes.
        knee.engine.traffic.ratePerSec = args.getDouble("rate") * 0.75;
        const auto all = cluster::allDispatchPolicies();
        std::vector<cluster::ClusterReport> reps(all.size());
        common::parallelFor(all.size(), [&](std::size_t i) {
            reps[i] = runCell(knee, all[i]);
        });
        bench::banner(
            "Knee study: 2-device hetero eDRAM/SRAM fleet at " +
            Table::num(knee.engine.traffic.ratePerSec, 4) + " req/s");
        Table t(kClusterHeader);
        for (std::size_t i = 0; i < all.size(); ++i)
            addClusterRow(t, toString(all[i]), reps[i]);
        t.print("same trace per row; SRAM device runs the smaller "
                "pool");

        // Derive the two compared cells from `all` so reordering the
        // policy list cannot silently decouple the note from the data.
        auto dispatchIndex = [&all](cluster::DispatchKind k) {
            for (std::size_t i = 0; i < all.size(); ++i)
                if (all[i] == k)
                    return i;
            KELLE_ASSERT(false, "dispatch policy missing from the "
                                "knee study: ",
                         toString(k));
            return all.size();
        };
        const auto &rr =
            reps[dispatchIndex(cluster::DispatchKind::RoundRobin)]
                .aggregate.summary;
        const auto &jsk =
            reps[dispatchIndex(cluster::DispatchKind::JoinShortestKv)]
                .aggregate.summary;
        if (jsk.ttftP95 < rr.ttftP95) {
            bench::note(
                "join-shortest-kv beats round-robin on p95 TTFT at "
                "the knee: " +
                toString(Time::seconds(jsk.ttftP95)) + " vs " +
                toString(Time::seconds(rr.ttftP95)) + " (" +
                Table::mult(rr.ttftP95 /
                            std::max(jsk.ttftP95, 1e-12)) +
                "), SLO attainment " + Table::pct(jsk.sloAttainment) +
                " vs " + Table::pct(rr.sloAttainment) +
                ", imbalance CV " +
                Table::num(
                    reps[dispatchIndex(
                             cluster::DispatchKind::JoinShortestKv)]
                        .loadImbalanceCv,
                    2) +
                " vs " +
                Table::num(
                    reps[dispatchIndex(
                             cluster::DispatchKind::RoundRobin)]
                        .loadImbalanceCv,
                    2));
        } else {
            bench::note("join-shortest-kv did not beat round-robin "
                        "on p95 TTFT in this configuration");
        }

        // Preemption study: the same fleet pushed into overload with
        // a TPOT target near the achievable mean, so stalled batch
        // members become provably doomed mid-flight and reclamation
        // has something to reclaim.
        cluster::ClusterConfig pre = knee;
        pre.dispatch = cluster::DispatchKind::JoinShortestKv;
        pre.engine.traffic.ratePerSec = args.getDouble("rate") * 2.0;
        pre.engine.traffic.slo.tpotSec = 0.15;
        // Quarter the pools: preemption only pays where KV is the
        // binding constraint, i.e. requests actually wait for budget.
        for (auto &d : pre.devices)
            d.poolTokens = std::max<std::size_t>(1, d.poolTokens / 4);
        std::vector<cluster::ClusterReport> pruns(2);
        common::parallelFor(2, [&](std::size_t i) {
            auto cfg = pre;
            cfg.engine.preempt.enabled = i == 1;
            cluster::ClusterEngine engine(cfg);
            pruns[i] = engine.run();
        });
        bench::banner("Preemption study: join-shortest-kv, doomed "
                      "decodes reclaimed vs kept");
        Table pt(kClusterHeader);
        addClusterRow(pt, "preempt off", pruns[0]);
        addClusterRow(pt, "preempt on", pruns[1]);
        pt.print("a doomed decode already misses TPOT; reclaiming "
                 "its grant re-opens the pool to waiting requests");
    }

    // ---- Fault study: goodput vs availability ---------------------
    // The robustness trade the injector makes measurable: the same
    // trace on the same fleet while the per-device MTBF shrinks from
    // "never fails" to a quarter of the configured value. Goodput
    // should degrade gracefully with availability (retries recover
    // crash victims) rather than collapse.
    if (base.faults.enabled) {
        const double mtbf = base.faults.mtbfSec;
        struct FaultCell
        {
            std::string label;
            bool enabled;
            double mtbfSec;
        };
        const std::vector<FaultCell> fcells = {
            {"off", false, mtbf},
            {Table::num(mtbf * 4.0, 0) + " s", true, mtbf * 4.0},
            {Table::num(mtbf, 0) + " s", true, mtbf},
            {Table::num(mtbf / 4.0, 0) + " s", true, mtbf / 4.0},
        };
        std::vector<cluster::ClusterReport> freps(fcells.size());
        common::parallelFor(fcells.size(), [&](std::size_t i) {
            cluster::ClusterConfig cfg = base;
            cfg.faults.enabled = fcells[i].enabled;
            cfg.faults.mtbfSec = fcells[i].mtbfSec;
            freps[i] = runCell(cfg, dispatches.front());
        });
        bench::banner("Fault study: goodput vs availability (" +
                      toString(dispatches.front()) + " dispatch, "
                      "MTTR " + Table::num(base.faults.mttrSec, 0) +
                      " s, retry budget " +
                      std::to_string(base.faults.maxRetries) + ")");
        Table ft({"MTBF", "availability", "done", "failed", "crashes",
                  "goodput tok/s", "SLO all", "lost tok", "retries"});
        for (std::size_t i = 0; i < fcells.size(); ++i) {
            const auto &s = freps[i].aggregate.summary;
            const cluster::ClusterFaultReport &f = freps[i].faults;
            const double span =
                s.makespan.sec() *
                static_cast<double>(freps[i].devices.size());
            const double avail =
                span > 0.0 ? 1.0 - f.totalDowntimeSec / span : 1.0;
            ft.addRow({fcells[i].label, Table::pct(avail),
                       std::to_string(s.completed),
                       std::to_string(f.permanentFailures),
                       std::to_string(f.crashes),
                       Table::num(s.goodputTokensPerSec, 1),
                       Table::pct(s.sloAttainment),
                       std::to_string(f.lostTokens),
                       std::to_string(f.retries)});
        }
        ft.print("same arrival trace per row; only the fault stream "
                 "changes");
    }

    // ---- Sweep: devices x dispatch x fleet -------------------------
    if (args.getBool("sweep")) {
        struct SweepCell
        {
            std::size_t devices;
            bool hetero;
            cluster::DispatchKind dispatch;
        };
        std::vector<SweepCell> cells;
        for (std::size_t n : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}})
            for (bool hetero : {false, true})
                for (auto dispatch : dispatches)
                    cells.push_back({n, hetero, dispatch});

        std::vector<cluster::ClusterReport> reps(cells.size());
        common::parallelFor(cells.size(), [&](std::size_t i) {
            cluster::ClusterConfig cfg = base;
            cfg.devices = makeFleet(cells[i].devices, cells[i].hetero,
                                    pool, sram_pool, max_batch,
                                    base.engine.model)
                              .devices;
            cfg.engine.traffic.numRequests = std::min<std::size_t>(
                cfg.engine.traffic.numRequests, 40);
            reps[i] = runCell(cfg, cells[i].dispatch);
        });

        bench::banner("Sweep: fleet size x dispatch x heterogeneity");
        Table sweep({"devices", "fleet", "dispatch", "TTFT p95",
                     "SLO all", "goodput tok/s", "imbalance",
                     "refresh share", "E/token"});
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const auto &s = reps[i].aggregate.summary;
            const double total_j = s.energy.total().j();
            sweep.addRow(
                {std::to_string(cells[i].devices),
                 cells[i].hetero ? "eDRAM/SRAM" : "eDRAM",
                 toString(cells[i].dispatch),
                 toString(Time::seconds(s.ttftP95)),
                 Table::pct(s.sloAttainment),
                 Table::num(s.goodputTokensPerSec, 1),
                 Table::num(reps[i].loadImbalanceCv, 2),
                 Table::pct(total_j > 0.0
                                ? reps[i].refreshEnergyJ / total_j
                                : 0.0),
                 toString(Energy::joules(s.energyPerToken))});
        }
        sweep.print("<= 40 requests per cell, same seed and offered "
                    "rate per cell (adding devices relieves load)");
        bench::note("KV-aware dispatch narrows the TTFT tail as the "
                    "fleet grows and absorbs the hetero fleet's pool "
                    "asymmetry; refresh energy stays a small share on "
                    "the eDRAM devices");
    }
    return 0;
}
