/**
 * @file
 * Figure 15 reproduction:
 *  (a) impact of KV recomputation on the Kelle+eDRAM energy breakdown
 *      (LLaMA3.2-3B and LLaMA2-13B);
 *  (b) refresh-strategy ablation on LLaMA2-7B/PG19: Org (45 us), Uni
 *      (iso-accuracy uniform), 2D (2DRP), 2K (2DRP + Kelle scheduler);
 *  plus the popularity-threshold (theta) sweep DESIGN.md calls out.
 */

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace kelle;
using namespace kelle::accel;

int
main()
{
    // ---- (a) recomputation on/off -------------------------------------
    bench::banner("Figure 15a: KV recomputation impact (PG19, batch 16)");
    Table a({"model", "recompute", "energy_eff", "KV+refresh share",
             "RSA share", "recomputed tok/step"});
    for (const auto &mc : {model::llama32_3b(), model::llama2_13b()}) {
        sim::Task task = sim::pg19();
        const auto w = sim::makeWorkload(task, mc, 16);
        const auto base = simulate(originalSramSystem(), w);
        for (bool recomp : {true, false}) {
            auto sys = kelleEdramSystem(task.budget);
            sys.kv.recompute =
                recomp ? RecomputeMode::Auto : RecomputeMode::None;
            const auto r = simulate(sys, w);
            EnergyBreakdown e = r.prefillEnergy;
            e += r.decodeEnergy;
            const double on = e.onChipTotal().j();
            a.addRow({mc.name, recomp ? "R" : "NR",
                      Table::mult(compare(base, r).energyEfficiency),
                      Table::pct((e.kvMem + e.refresh).j() / on),
                      Table::pct(e.rsa.j() / on),
                      Table::num(r.recomputedTokensPerStep, 1)});
        }
    }
    a.print();
    bench::note("paper 15a: recomputation cuts the KV-cache share with "
                "a minimal RSA increase (1.16x/1.08x energy gain)");

    // ---- (b) refresh strategies ---------------------------------------
    bench::banner("Figure 15b: Org / Uniform / 2DRP / 2DRP+scheduler "
                  "(LLaMA2-7B, PG19)");
    sim::Task task = sim::pg19();
    const auto w = sim::makeWorkload(task, model::llama2_7b(), 16);
    const auto base = simulate(originalSramSystem(), w);
    const edram::TwoDRefreshPolicy policy(
        edram::RefreshIntervals::paper2drp(),
        edram::RetentionModel::paper65nm());

    Table b({"strategy", "energy_eff", "refresh share", "latency (s)"});
    auto run = [&](const char *name, RefreshSpec::Mode mode,
                   edram::RefreshIntervals intervals,
                   SchedulerKind sched) {
        auto sys = kelleEdramSystem(task.budget);
        sys.refresh.mode = mode;
        sys.refresh.intervals = intervals;
        sys.scheduler = sched;
        const auto r = simulate(sys, w);
        EnergyBreakdown e = r.prefillEnergy;
        e += r.decodeEnergy;
        b.addRow({name,
                  Table::mult(compare(base, r).energyEfficiency),
                  Table::pct(e.refresh.j() / e.total().j()),
                  Table::num(r.totalLatency().sec(), 1)});
    };
    // Section 8.3.3: the uniform interval that matches 2DRP's accuracy
    // is 0.36 ms — a uniform policy must refresh *everything* at the
    // rate 2DRP reserves for its most sensitive group (HST MSBs).
    (void)policy;
    run("Org (45 us)", RefreshSpec::Mode::Retention,
        edram::RefreshIntervals::paper2drp(), SchedulerKind::Baseline);
    run("Uni (0.36 ms iso-accuracy)", RefreshSpec::Mode::Uniform,
        edram::RefreshIntervals::uniform(Time::millis(0.36)),
        SchedulerKind::Baseline);
    run("2D (2DRP)", RefreshSpec::Mode::TwoD,
        edram::RefreshIntervals::paper2drp(), SchedulerKind::Baseline);
    run("2K (2DRP + Kelle scheduler)", RefreshSpec::Mode::TwoD,
        edram::RefreshIntervals::paper2drp(), SchedulerKind::Kelle);
    b.print();
    bench::note("paper 15b: 1.00 -> 1.21 -> 1.51 -> 1.61 "
                "(LLaMA3.2-3B); refresh share falls 40% -> 2%");

    // ---- theta sweep (design-choice ablation) --------------------------
    bench::banner("Ablation: popularity threshold theta (fraction of "
                  "tokens eligible for x-storage)");
    Table c({"popular fraction", "energy_eff", "recomputed tok/step"});
    for (double frac : {0.1, 0.25, 0.35, 0.5, 0.75}) {
        auto sys = kelleEdramSystem(task.budget);
        sys.kv.popularFraction = frac;
        const auto r = simulate(sys, w);
        c.addRow({Table::num(frac, 2),
                  Table::mult(compare(base, r).energyEfficiency),
                  Table::num(r.recomputedTokensPerStep, 1)});
    }
    c.print();
    return 0;
}
