/**
 * @file
 * Table 9 reproduction: energy efficiency across batch sizes 16/4/1
 * for the four systems on PG19 with LLaMA2-7B.
 */

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace kelle;
using namespace kelle::accel;

int
main()
{
    const auto mc = model::llama2_7b();
    sim::Task task = sim::pg19();

    bench::banner("Table 9: energy efficiency across batch sizes "
                  "(PG19, LLaMA2-7B)");
    Table t({"batch", "Original+SRAM", "AEP+SRAM", "AERP+SRAM",
             "Kelle+eDRAM"});
    for (std::size_t batch : {16u, 4u, 1u}) {
        const auto w = sim::makeWorkload(task, mc, batch);
        const auto base = simulate(originalSramSystem(), w);
        std::vector<std::string> row = {std::to_string(batch), "1x"};
        for (const auto &sys :
             {aepSramSystem(task.budget), aerpSramSystem(task.budget),
              kelleEdramSystem(task.budget)}) {
            const auto r = simulate(sys, w);
            row.push_back(Table::mult(compare(base, r).energyEfficiency));
        }
        t.addRow(row);
    }
    t.print();
    bench::note("paper Table 9: 16 -> 1x/3.16x/4.33x/6.67x; "
                "4 -> 1x/1.71x/1.81x/2.23x; 1 -> 1x/1.24x/1.36x/1.71x "
                "— gains shrink at small batch because weight "
                "streaming (unaffected by KV management) dominates");
    return 0;
}
