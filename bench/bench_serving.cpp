/**
 * @file
 * Multi-request edge serving: arrival rate x scheduling policy x
 * eDRAM-vs-SRAM on-chip memory, on the event-driven serving engine
 * (src/serving) over the Section 8 task mix (LA/TQ/QP/PG19).
 *
 * The headline section serves one seeded trace under FCFS
 * run-to-completion and continuous batching and reports the SLO
 * metrics (TTFT/TPOT latency percentiles, goodput, queue depth,
 * refresh energy). The sweep section scales the arrival rate from idle to
 * saturating across three platform variants. Every number is a pure
 * function of the flags; rerunning with the same seed is
 * bit-identical.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/arg_parser.hpp"
#include "common/table.hpp"
#include "serving/scheduler.hpp"

using namespace kelle;

namespace {

struct PolicyRun
{
    serving::SchedulePolicy policy;
    serving::ServingReport report;
};

serving::ServingConfig
baseConfig(const common::ArgParser &args)
{
    serving::ServingConfig cfg;
    cfg.traffic.ratePerSec = args.getDouble("rate");
    cfg.traffic.numRequests = args.getSize("requests");
    cfg.traffic.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    cfg.traffic.process = args.getBool("burst")
                              ? serving::ArrivalProcess::Bursty
                              : serving::ArrivalProcess::Poisson;
    cfg.maxBatch = args.getSize("maxbatch");
    cfg.budgetOverride = args.getSize("budget");
    cfg.poolTokens = args.getSize("pool");
    cfg.maxEngineSteps = args.getSize("steps");
    return cfg;
}

serving::ServingReport
runPolicy(serving::ServingConfig cfg, serving::SchedulePolicy policy)
{
    cfg.policy = policy;
    serving::Scheduler engine(cfg);
    return engine.run();
}

void
addSummaryRow(Table &t, const std::string &label,
              const serving::ServingReport &rep)
{
    const auto &s = rep.summary;
    t.addRow({label, std::to_string(s.completed),
              std::to_string(s.rejected),
              toString(Time::seconds(s.ttftP50)),
              toString(Time::seconds(s.ttftP95)),
              toString(Time::seconds(s.ttftP99)),
              toString(Time::seconds(s.e2eP95)),
              toString(Time::seconds(s.tpotMean)),
              Table::num(s.goodputTokensPerSec, 1),
              Table::num(s.meanQueueDepth, 1),
              Table::pct(rep.poolPeakBytes /
                         std::max(rep.poolCapacityBytes, 1.0)),
              Table::pct(s.meanBudgetFraction),
              toString(s.energy.refresh),
              toString(Energy::joules(s.energyPerToken))});
}

} // namespace

int
main(int argc, char **argv)
{
    common::ArgParser args(
        "bench_serving",
        "event-driven multi-request serving: rate x policy x memory");
    args.addDouble("rate", 0.02, "mean arrival rate in req/s");
    args.addString("policy", "both", "fcfs | contbatch | both");
    args.addInt("budget", 0, "per-request KV budget N' (0 = task N')");
    args.addInt("seed", 42, "arrival-trace seed");
    args.addInt("steps", 0, "max decode steps (0 = run to completion)");
    args.addInt("requests", 64, "trace length in requests");
    args.addBool("burst", false, "bursty (MMPP) arrivals");
    args.addInt("maxbatch", 16, "continuous-batching batch cap");
    args.addInt("pool", 0, "KV pool tokens (0 = capacity analysis)");
    args.addBool("sweep", true, "run the rate x policy x memory sweep");
    if (!args.parse(argc, argv))
        return args.exitCode();

    std::vector<serving::SchedulePolicy> policies;
    const std::string policy_text = args.getString("policy");
    if (policy_text == "both") {
        policies = {serving::SchedulePolicy::Fcfs,
                    serving::SchedulePolicy::ContinuousBatching};
    } else {
        serving::SchedulePolicy p;
        if (!serving::parseSchedulePolicy(policy_text, &p)) {
            std::fprintf(stderr,
                         "unknown --policy '%s' (fcfs|contbatch|both)\n",
                         policy_text.c_str());
            return 1;
        }
        policies = {p};
    }

    const serving::ServingConfig base = baseConfig(args);

    bench::banner("Serving: " + std::to_string(base.traffic.numRequests) +
                  " requests, rate " +
                  Table::num(base.traffic.ratePerSec, 4) + " req/s (" +
                  Table::num(serving::offeredTokensPerSec(base.traffic),
                             1) +
                  " tok/s offered), " + toString(base.traffic.process) +
                  " arrivals, seed " + std::to_string(base.traffic.seed));

    std::vector<PolicyRun> runs;
    Table headline({"policy", "done", "rej", "TTFT p50", "TTFT p95",
                    "TTFT p99", "e2e p95", "TPOT", "goodput tok/s",
                    "queue", "pool peak", "N' kept", "refresh E",
                    "E/token"});
    for (auto policy : policies) {
        PolicyRun run{policy, runPolicy(base, policy)};
        addSummaryRow(headline, toString(policy), run.report);
        runs.push_back(std::move(run));
    }
    headline.print("system " + base.system.name + ", model " +
                   base.model.name + ", KV pool " +
                   std::to_string(runs.front().report.poolTokens) +
                   " tokens");

    if (runs.size() == 2) {
        const auto &fcfs = runs[0].report.summary;
        const auto &cb = runs[1].report.summary;
        if (cb.ttftP95 < fcfs.ttftP95) {
            bench::note("continuous batching beats FCFS on p95 TTFT: " +
                        toString(Time::seconds(cb.ttftP95)) + " vs " +
                        toString(Time::seconds(fcfs.ttftP95)) + " (" +
                        Table::mult(fcfs.ttftP95 /
                                    std::max(cb.ttftP95, 1e-12)) +
                        ")");
        } else {
            bench::note("FCFS matched continuous batching on p95 TTFT "
                        "at this arrival rate (below saturation)");
        }
    }

    if (args.getBool("sweep")) {
        struct SystemCase
        {
            std::string label;
            accel::SystemConfig sys;
        };
        std::vector<SystemCase> systems;
        systems.push_back({"Kelle+eDRAM 4MB",
                           accel::kelleEdramSystem(2048)});
        {
            accel::SystemConfig s = accel::kelleEdramSystem(2048);
            s.tech = accel::edramSystemTech(Bytes::mib(8));
            s.name = "Kelle+eDRAM-8MB";
            systems.push_back({"Kelle+eDRAM 8MB", s});
        }
        systems.push_back({"AERP+SRAM 4MB", accel::aerpSramSystem(2048)});

        const std::vector<double> rate_scales = {0.5, 1.0, 2.0};
        bench::banner("Sweep: arrival rate x policy x on-chip memory");
        Table sweep({"system", "policy", "rate req/s", "TTFT p95",
                     "goodput tok/s", "E/token", "refresh share"});
        for (const auto &sc : systems) {
            for (auto policy : policies) {
                for (double scale : rate_scales) {
                    serving::ServingConfig cfg = base;
                    cfg.system = sc.sys;
                    cfg.policy = policy;
                    cfg.traffic.ratePerSec *= scale;
                    cfg.traffic.numRequests =
                        std::min<std::size_t>(cfg.traffic.numRequests,
                                              48);
                    serving::Scheduler engine(cfg);
                    const auto rep = engine.run();
                    const auto &s = rep.summary;
                    const double total_j = s.energy.total().j();
                    sweep.addRow(
                        {sc.label, toString(policy),
                         Table::num(cfg.traffic.ratePerSec, 4),
                         toString(Time::seconds(s.ttftP95)),
                         Table::num(s.goodputTokensPerSec, 1),
                         toString(Energy::joules(s.energyPerToken)),
                         Table::pct(total_j > 0.0
                                        ? s.energy.refresh.j() / total_j
                                        : 0.0)});
                }
            }
        }
        sweep.print("<= 48 requests per cell, same seed per cell");
        bench::note("eDRAM's denser on-chip KV raises goodput at equal "
                    "area; refresh energy stays a small share under "
                    "2DRP while SRAM pays none but serves fewer "
                    "on-chip tokens");
    }
    return 0;
}
