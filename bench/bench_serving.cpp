/**
 * @file
 * Multi-request edge serving: arrival rate x scheduling policy x
 * prefill chunking x eDRAM-vs-SRAM on-chip memory, on the event-driven
 * serving engine (src/serving) over the Section 8 task mix
 * (LA/TQ/QP/PG19).
 *
 * The headline section serves one seeded trace under every selected
 * policy and reports the SLO metrics (TTFT/TPOT latency percentiles,
 * SLO attainment against the per-task deadlines, goodput, admission
 * bypasses, refresh energy). The chunked-prefill study compares
 * monolithic and chunked prefill on the PG19-heavy mix, where long
 * decodes hog the pool and long prompts stall the batch. The sweep
 * section scales the arrival rate from idle to saturating across
 * platform variants and chunk sizes, with independent cells evaluated
 * by common::parallelFor. Every number is a pure function of the
 * flags; rerunning with the same seed is bit-identical.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/arg_parser.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serving/scheduler.hpp"

using namespace kelle;

namespace {

serving::ServingConfig
baseConfig(const common::ArgParser &args)
{
    serving::ServingConfig cfg;
    cfg.traffic.ratePerSec = args.getDouble("rate");
    cfg.traffic.numRequests = args.getSize("requests");
    cfg.traffic.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    cfg.traffic.process = args.getBool("burst")
                              ? serving::ArrivalProcess::Bursty
                              : serving::ArrivalProcess::Poisson;
    if (args.getString("mix") == "pg19")
        cfg.traffic.mix = serving::pg19HeavyMix();
    cfg.maxBatch = args.getSize("maxbatch");
    cfg.chunkSlackFrac = args.getDouble("chunk-slack");
    cfg.budgetOverride = args.getSize("budget");
    cfg.poolTokens = args.getSize("pool");
    cfg.maxEngineSteps = args.getSize("steps");
    cfg.clientRetries =
        static_cast<std::uint32_t>(args.getInt("client-retries"));
    cfg.clientRetryBackoffSec =
        args.getDouble("client-retry-backoff");
    cfg.fastSim = args.getBool("fastsim");
    cfg.traffic.sessions = args.getSize("sessions");
    cfg.traffic.sessionPrefixFrac = args.getDouble("prefix-frac");
    if (args.getBool("paged")) {
        cfg.paged.enabled = true;
        cfg.paged.blockTokens = args.getSize("block-tokens");
        cfg.paged.quantBits = args.getInt("kv-quant");
    }
    return cfg;
}

serving::ServingReport
runCell(serving::ServingConfig cfg, serving::SchedulePolicy policy,
        std::size_t chunk_tokens)
{
    cfg.policy = policy;
    cfg.chunkTokens = chunk_tokens;
    serving::Scheduler engine(cfg);
    return engine.run();
}

std::string
chunkLabel(std::size_t chunk)
{
    return chunk == 0 ? "whole" : std::to_string(chunk);
}

void
addSummaryRow(Table &t, const std::string &label, std::size_t chunk,
              const serving::ServingReport &rep)
{
    const auto &s = rep.summary;
    t.addRow({label, chunkLabel(chunk), std::to_string(s.completed),
              std::to_string(s.rejected),
              toString(Time::seconds(s.ttftP50)),
              toString(Time::seconds(s.ttftP95)),
              toString(Time::seconds(s.tpotMean)),
              toString(Time::seconds(s.tokenGapP95)),
              Table::pct(s.sloTtftAttainment),
              Table::pct(s.sloAttainment),
              Table::num(s.goodputTokensPerSec, 1),
              std::to_string(s.admissionBypasses),
              toString(Time::seconds(s.maxQueueWaitSec)),
              Table::pct(rep.poolPeakBytes /
                         std::max(rep.poolCapacityBytes, 1.0)),
              Table::pct(s.meanBudgetFraction),
              toString(Energy::joules(s.energyPerToken))});
}

} // namespace

int
main(int argc, char **argv)
{
    common::ArgParser args(
        "bench_serving",
        "event-driven multi-request serving: rate x policy x chunking "
        "x memory");
    args.addDouble("rate", 0.02, "mean arrival rate in req/s");
    args.addString("policy", "all",
                   serving::schedulePolicyNames() + " | both | all");
    args.addInt("chunk-tokens", 256,
                "prefill chunk size for the chunked study/sweep cells; "
                "passing the flag explicitly applies it to the "
                "headline too (0 disables chunking everywhere)");
    args.addDouble("chunk-slack", 0.0,
                   "edf-chunked slack-aware alternation: run "
                   "consecutive chunks when the prefilling request's "
                   "TTFT slack is below this fraction of its budget "
                   "(0 = unconditional alternation)");
    args.addInt("budget", 0, "per-request KV budget N' (0 = task N')");
    args.addInt("seed", 42, "arrival-trace seed");
    args.addInt("steps", 0, "max engine steps (0 = run to completion)");
    args.addInt("requests", 64, "trace length in requests");
    args.addBool("burst", false, "bursty (MMPP) arrivals");
    args.addInt("client-retries", 0,
                "client-side resubmits of an overload-rejected "
                "request after a jittered backoff (0 = reject is "
                "final; the base arrival trace is unchanged)");
    args.addDouble("client-retry-backoff", 5.0,
                   "client retry backoff base, seconds (doubles per "
                   "attempt, seeded jitter)");
    args.addInt("maxbatch", 16, "continuous-batching batch cap");
    args.addInt("pool", 0, "KV pool tokens (0 = capacity analysis)");
    args.addString("mix", "even",
                   "task mix: even | pg19 (PG19-heavy)");
    args.addDouble("slo-scale", 1.0,
                   "scale the default TTFT/TPOT deadlines");
    args.addBool("study", true,
                 "run the chunked-prefill study (PG19-heavy mix)");
    args.addBool("sweep", true,
                 "run the rate x policy x chunk x memory sweep");
    args.addBool("fastsim", true,
                 "fast-forward silent decode windows (off replays "
                 "every boundary as an event; output is identical)");
    args.addBool("paged", false,
                 "paged KV pool: page-granular admission/eviction with "
                 "copy-free shared prefixes (adds the contiguous-vs-"
                 "paged comparison section)");
    args.addInt("block-tokens", 64, "paged mode: tokens per KV page");
    args.addInt("kv-quant", 0,
                "paged mode: stored KV bits per value (0 = system "
                "default; 8/4 shrink pages through group quantization)");
    args.addInt("sessions", 0,
                "multi-turn sessions sharing a system prompt per task "
                "class (0 = every prompt unique)");
    args.addDouble("prefix-frac", 0.5,
                   "fraction of each prompt covered by the shared "
                   "session prefix");
    args.addString("trace-out", "",
                   "write the first headline policy's request-"
                   "lifecycle trace as Chrome trace-event JSON "
                   "(Perfetto)");
    args.addString("metrics-out", "",
                   "dump the first headline policy's metrics registry "
                   "(.csv = sampled time series, else JSON)");
    args.addDouble("metrics-interval", 60.0,
                   "time-series sampling interval for --metrics-out "
                   "CSV, sim seconds");
    args.addBool("attribution", false,
                 "per-request latency waterfalls on the first "
                 "headline policy: print the SLO miss-cause "
                 "breakdown, add attribution.* metrics to "
                 "--metrics-out and SLO targets to --trace-out");
    if (!args.parse(argc, argv))
        return args.exitCode();

    const std::string mix_text = args.getString("mix");
    if (mix_text != "even" && mix_text != "pg19") {
        std::fprintf(stderr, "unknown --mix '%s' (even|pg19)\n",
                     mix_text.c_str());
        return 1;
    }

    std::vector<serving::SchedulePolicy> policies;
    const std::string policy_text = args.getString("policy");
    if (policy_text == "all") {
        policies = serving::allSchedulePolicies();
    } else if (policy_text == "both") {
        policies = {serving::SchedulePolicy::Fcfs,
                    serving::SchedulePolicy::ContinuousBatching};
    } else {
        serving::SchedulePolicy p;
        if (!serving::parseSchedulePolicy(policy_text, &p)) {
            std::fprintf(stderr,
                         "unknown --policy '%s' (%s|both|all)\n",
                         policy_text.c_str(),
                         serving::schedulePolicyNames().c_str());
            return 1;
        }
        policies = {p};
    }

    serving::ServingConfig base = baseConfig(args);
    const double slo_scale = args.getDouble("slo-scale");
    base.traffic.slo.ttftBaseSec *= slo_scale;
    base.traffic.slo.ttftPerCtxTokenSec *= slo_scale;
    base.traffic.slo.tpotSec *= slo_scale;
    const std::size_t chunk = args.getSize("chunk-tokens");

    bench::banner("Serving: " + std::to_string(base.traffic.numRequests) +
                  " requests, rate " +
                  Table::num(base.traffic.ratePerSec, 4) + " req/s (" +
                  Table::num(serving::offeredTokensPerSec(base.traffic),
                             1) +
                  " tok/s offered), " + toString(base.traffic.process) +
                  " arrivals, " + mix_text + " mix, seed " +
                  std::to_string(base.traffic.seed));

    const std::vector<std::string> kSummaryHeader = {
        "policy", "chunk", "done", "rej", "TTFT p50", "TTFT p95",
        "TPOT", "stall p95", "SLO ttft", "SLO all", "goodput tok/s",
        "bypass", "max wait", "pool peak", "N' kept", "E/token"};

    // ---- Headline: every policy on the same trace. Default runs are
    // monolithic (chunking is studied separately below); an explicit
    // --chunk-tokens applies here too. ------------------------------
    const std::size_t headline_chunk =
        args.provided("chunk-tokens") ? chunk : 0;
    // The trace recorder rides on the first policy cell only: each
    // cell runs on its own parallelFor lane, so exactly one lane ever
    // touches the recorder.
    const std::string trace_out = args.getString("trace-out");
    const std::string metrics_out = args.getString("metrics-out");
    obs::TraceRecorder recorder;
    obs::LatencyWaterfall waterfall;
    const bool attribution = args.getBool("attribution");
    const bool record = !trace_out.empty() || !metrics_out.empty();
    std::vector<serving::ServingReport> runs(policies.size());
    common::parallelFor(policies.size(), [&](std::size_t i) {
        serving::ServingConfig cfg = base;
        if (i == 0 && record)
            cfg.trace = &recorder;
        if (i == 0 && attribution)
            cfg.waterfall = &waterfall;
        runs[i] = runCell(cfg, policies[i], headline_chunk);
    });
    Table headline(kSummaryHeader);
    for (std::size_t i = 0; i < policies.size(); ++i)
        addSummaryRow(headline, toString(policies[i]), headline_chunk,
                      runs[i]);
    headline.print(
        "system " + base.system.name + ", model " + base.model.name +
        ", KV pool " + std::to_string(runs.front().poolTokens) +
        " tokens, TTFT deadline " +
        Table::num(base.traffic.slo.ttftBaseSec, 0) + "s + " +
        Table::num(base.traffic.slo.ttftPerCtxTokenSec * 1e3, 0) +
        "ms/ctx-token, TPOT " +
        Table::num(base.traffic.slo.tpotSec * 1e3, 0) + "ms");

    if (attribution)
        bench::printAttribution(runs.front().attribution, {},
                                toString(policies.front()) +
                                    " policy");

    if (!trace_out.empty()) {
        if (recorder.writeJson(trace_out))
            std::printf("\nwrote trace: %s (%s policy; load at "
                        "https://ui.perfetto.dev)\n",
                        trace_out.c_str(),
                        toString(policies.front()).c_str());
    }
    if (!metrics_out.empty()) {
        obs::MetricsRegistry reg;
        reg.setGauge("serving.completed",
                     static_cast<double>(runs.front().summary.completed));
        reg.setGauge("serving.rejected",
                     static_cast<double>(runs.front().summary.rejected));
        reg.setGauge("serving.goodput_tok_per_s",
                     runs.front().summary.goodputTokensPerSec);
        reg.setGauge("serving.slo_attainment",
                     runs.front().summary.sloAttainment);
        if (attribution)
            obs::exportAttributionMetrics(waterfall, reg);
        reg.ingestTrace(recorder);
        if (reg.writeFile(metrics_out,
                          args.getDouble("metrics-interval")))
            std::printf("\nwrote metrics: %s\n", metrics_out.c_str());
    }

    // ---- Paged KV pool: contiguous vs paged on the same trace -----
    if (args.getBool("paged")) {
        const serving::SchedulePolicy pol = policies.front();
        serving::ServingConfig contig = base;
        contig.paged = serving::PagedKvConfig{};
        serving::ServingConfig shared_off = base;
        shared_off.paged.sharePrefixes = false;
        // The paged cell records its trace so the prefix-hit column
        // below is read back out of the metrics registry the trace
        // counters feed — the printed figure and a metrics dump
        // cannot diverge.
        obs::TraceRecorder paged_rec;
        serving::ServingConfig paged_cfg = base;
        paged_cfg.trace = &paged_rec;
        const auto c_rep = runCell(contig, pol, headline_chunk);
        const auto n_rep = runCell(shared_off, pol, headline_chunk);
        const auto p_rep = runCell(paged_cfg, pol, headline_chunk);

        obs::MetricsRegistry reg;
        reg.ingestTrace(paged_rec);
        const obs::TimeSeries &hits =
            reg.series("device.kv_prefix_hit_tokens");
        reg.setGauge("paged.prefix_hit_tokens",
                     hits.valueAt(hits.endSec(), 0.0));

        bench::banner(
            "Paged KV pool: contiguous vs paged, policy " +
            toString(pol) + ", block " +
            std::to_string(base.paged.blockTokens) + " tokens" +
            (base.paged.quantBits > 0
                 ? ", INT" + std::to_string(base.paged.quantBits) +
                       " pages"
                 : "") +
            (base.traffic.sessions > 0
                 ? ", " + std::to_string(base.traffic.sessions) +
                       " sessions"
                 : ""));
        Table t({"mode", "done", "rej", "TTFT p95", "SLO all",
                 "goodput tok/s", "peak resident N'", "pool pages",
                 "peak pages", "shared peak", "prefix-hit tok", "CoW",
                 "clips"});
        const auto addPagedRow =
            [&t](const std::string &mode,
                 const serving::ServingReport &rep,
                 double hit_tokens) {
                const auto &s = rep.summary;
                t.addRow(
                    {mode, std::to_string(s.completed),
                     std::to_string(s.rejected),
                     toString(Time::seconds(s.ttftP95)),
                     Table::pct(s.sloAttainment),
                     Table::num(s.goodputTokensPerSec, 1),
                     std::to_string(rep.peakLogicalTokens),
                     rep.paged.enabled
                         ? std::to_string(rep.paged.totalPages)
                         : "-",
                     rep.paged.enabled
                         ? std::to_string(rep.paged.peakUsedPages)
                         : "-",
                     rep.paged.enabled
                         ? std::to_string(rep.paged.peakSharedPages)
                         : "-",
                     rep.paged.enabled
                         ? Table::num(hit_tokens, 0)
                         : "-",
                     rep.paged.enabled
                         ? std::to_string(rep.paged.cowCopies)
                         : "-",
                     rep.paged.enabled
                         ? std::to_string(rep.paged.budgetClips)
                         : "-"});
            };
        addPagedRow("contiguous", c_rep, 0.0);
        addPagedRow("paged", n_rep,
                    static_cast<double>(n_rep.paged.prefixHitTokens));
        addPagedRow("paged+shared", p_rep,
                    reg.gauge("paged.prefix_hit_tokens", 0.0));
        t.print("same trace per row; 'peak resident N'' is the peak "
                "sum of live grants' logical budgets (shared prefix "
                "pages are stored once but granted to every sharer)");
        const double mult =
            static_cast<double>(p_rep.peakLogicalTokens) /
            std::max<double>(1.0,
                             static_cast<double>(
                                 c_rep.peakLogicalTokens));
        bench::note(
            "paged+shared holds " + Table::mult(mult) +
            " the contiguous peak resident tokens (" +
            std::to_string(p_rep.peakLogicalTokens) + " vs " +
            std::to_string(c_rep.peakLogicalTokens) + "); " +
            std::to_string(p_rep.paged.tailReclaims) +
            " tail reclaims freed " +
            std::to_string(p_rep.paged.reclaimedPages) + " pages, " +
            std::to_string(p_rep.paged.cachedReclaims) +
            " cached prefixes evicted");
    }

    // ---- Chunked-prefill study: PG19-heavy mix, where long decodes
    // hog the KV pool and long prompts stall the batch. -------------
    if (args.getBool("study") && chunk > 0) {
        struct StudyCase
        {
            serving::SchedulePolicy policy;
            std::size_t chunk;
        };
        const std::vector<StudyCase> cases = {
            {serving::SchedulePolicy::ContinuousBatching, 0},
            {serving::SchedulePolicy::ContinuousBatching, chunk},
            {serving::SchedulePolicy::SjfWithinDeadline, chunk},
            {serving::SchedulePolicy::EdfChunked, 0},
            {serving::SchedulePolicy::EdfChunked, chunk},
        };
        // The comparison notes below contrast these two cells; derive
        // the indices so reordering `cases` cannot silently decouple
        // them.
        auto caseIndex = [&cases](serving::SchedulePolicy p,
                                  std::size_t c) {
            for (std::size_t i = 0; i < cases.size(); ++i)
                if (cases[i].policy == p && cases[i].chunk == c)
                    return i;
            KELLE_ASSERT(false, "study case missing: ", toString(p),
                         " chunk ", c);
            return cases.size();
        };
        const std::size_t cb_mono_idx = caseIndex(
            serving::SchedulePolicy::ContinuousBatching, 0);
        const std::size_t edf_chunked_idx =
            caseIndex(serving::SchedulePolicy::EdfChunked, chunk);
        // The knee (0.3x) keeps the TTFT tail transient queue jitter;
        // 1x is steady-state overload on this mix.
        const std::vector<std::pair<std::string, double>> regimes = {
            {"saturation knee", 0.3},
            {"overload", 1.0},
        };
        for (const auto &[regime, rate_scale] : regimes) {
            serving::ServingConfig study = base;
            study.traffic.mix = serving::pg19HeavyMix();
            study.traffic.ratePerSec *= rate_scale;
            std::vector<serving::ServingReport> reps(cases.size());
            common::parallelFor(cases.size(), [&](std::size_t i) {
                reps[i] =
                    runCell(study, cases[i].policy, cases[i].chunk);
            });

            bench::banner(
                "Chunked prefill study: PG19-heavy mix, chunk " +
                std::to_string(chunk) + " tokens, " + regime +
                " (rate " + Table::num(study.traffic.ratePerSec, 4) +
                " req/s)");
            Table t(kSummaryHeader);
            for (std::size_t i = 0; i < cases.size(); ++i)
                addSummaryRow(t, toString(cases[i].policy),
                              cases[i].chunk, reps[i]);
            // With the slack-aware knob on, add the unconditional
            // alternation baseline so the recovered TTFT tax is
            // visible in one table.
            if (study.chunkSlackFrac > 0.0) {
                serving::ServingConfig noslack = study;
                noslack.chunkSlackFrac = 0.0;
                const auto base_rep = runCell(
                    noslack, serving::SchedulePolicy::EdfChunked,
                    chunk);
                addSummaryRow(t, "edf-chunked slack0", chunk,
                              base_rep);
                const double tax = base_rep.summary.ttftP95;
                const double rec = reps[edf_chunked_idx].summary.ttftP95;
                bench::note(
                    "slack-aware alternation (frac " +
                    Table::num(study.chunkSlackFrac, 2) +
                    ") p95 TTFT " + toString(Time::seconds(rec)) +
                    " vs unconditional " +
                    toString(Time::seconds(tax)) +
                    (rec < tax ? " - tax recovered" : ""));
            }
            t.print("same trace per row; 'stall p95' is the worst "
                    "decode gap a prefill inflicted on the batch");

            const auto &cb = reps[cb_mono_idx].summary;  // contbatch, monolithic
            const auto &edf = reps[edf_chunked_idx].summary; // edf-chunked, chunked
            if (edf.ttftP95 < cb.ttftP95) {
                bench::note(
                    "edf-chunked (chunk " + std::to_string(chunk) +
                    ") beats monolithic contbatch on p95 TTFT: " +
                    toString(Time::seconds(edf.ttftP95)) + " vs " +
                    toString(Time::seconds(cb.ttftP95)) + " (" +
                    Table::mult(cb.ttftP95 /
                                std::max(edf.ttftP95, 1e-12)) +
                    "); decode stall p95 " +
                    toString(Time::seconds(edf.tokenGapP95)) + " vs " +
                    toString(Time::seconds(cb.tokenGapP95)) +
                    ", SLO attainment " +
                    Table::pct(edf.sloAttainment) + " vs " +
                    Table::pct(cb.sloAttainment));
            } else {
                bench::note("edf-chunked did not beat monolithic "
                            "contbatch on p95 TTFT in this regime");
            }
        }
    }

    // ---- Sweep: arrival rate x policy x chunk x on-chip memory ----
    if (args.getBool("sweep")) {
        struct SystemCase
        {
            std::string label;
            accel::SystemConfig sys;
        };
        std::vector<SystemCase> systems;
        systems.push_back({"Kelle+eDRAM 4MB",
                           accel::kelleEdramSystem(2048)});
        {
            accel::SystemConfig s = accel::kelleEdramSystem(2048);
            s.tech = accel::edramSystemTech(Bytes::mib(8));
            s.name = "Kelle+eDRAM-8MB";
            systems.push_back({"Kelle+eDRAM 8MB", s});
        }
        systems.push_back({"AERP+SRAM 4MB", accel::aerpSramSystem(2048)});

        const std::vector<double> rate_scales = {0.5, 1.0, 2.0};
        std::vector<std::size_t> chunks = {0};
        if (chunk > 0)
            chunks.push_back(chunk);

        struct SweepCell
        {
            const SystemCase *system;
            serving::SchedulePolicy policy;
            double rateScale;
            std::size_t chunk;
        };
        std::vector<SweepCell> cells;
        for (const auto &sc : systems)
            for (auto policy : policies)
                for (double scale : rate_scales)
                    for (std::size_t c : chunks)
                        cells.push_back({&sc, policy, scale, c});

        // Cells are independent and seeded: evaluate them across the
        // machine, print in serial order — bit-identical to a serial
        // sweep.
        std::vector<serving::ServingReport> reps(cells.size());
        common::parallelFor(cells.size(), [&](std::size_t i) {
            serving::ServingConfig cfg = base;
            cfg.system = cells[i].system->sys;
            cfg.traffic.ratePerSec *= cells[i].rateScale;
            cfg.traffic.numRequests =
                std::min<std::size_t>(cfg.traffic.numRequests, 48);
            reps[i] = runCell(cfg, cells[i].policy, cells[i].chunk);
        });

        bench::banner(
            "Sweep: arrival rate x policy x chunk x on-chip memory");
        Table sweep({"system", "policy", "chunk", "rate req/s",
                     "TTFT p95", "SLO all", "goodput tok/s", "E/token",
                     "refresh share"});
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const auto &cell = cells[i];
            const auto &s = reps[i].summary;
            const double total_j = s.energy.total().j();
            sweep.addRow(
                {cell.system->label, toString(cell.policy),
                 chunkLabel(cell.chunk),
                 Table::num(base.traffic.ratePerSec * cell.rateScale,
                            4),
                 toString(Time::seconds(s.ttftP95)),
                 Table::pct(s.sloAttainment),
                 Table::num(s.goodputTokensPerSec, 1),
                 toString(Energy::joules(s.energyPerToken)),
                 Table::pct(total_j > 0.0
                                ? s.energy.refresh.j() / total_j
                                : 0.0)});
        }
        sweep.print("<= 48 requests per cell, same seed per cell");
        bench::note("deadline-aware admission lifts SLO attainment at "
                    "saturating rates; eDRAM's denser on-chip KV "
                    "raises goodput at equal area while 2DRP keeps "
                    "refresh energy a small share");
    }
    return 0;
}
