/**
 * @file
 * Table 4 reproduction: LLM accuracy under uniform refresh vs 2DRP at
 * three interval operating points. Each 2DRP interval set is compared
 * against the uniform interval with the same average retention
 * failure rate (iso refresh energy at equal average rate). All
 * conditions are averaged over three seeded substrates.
 */

#include "bench_util.hpp"
#include "common/table.hpp"
#include "edram/fault_model.hpp"
#include "sim/experiments.hpp"

using namespace kelle;

int
main()
{
    sim::Task task = sim::scaledForTiny(sim::wikitext2(), 160);
    sim::MultiSeedBench bench_ctx(task, /*seeds=*/3, /*base=*/909);
    const auto cfg = sim::cacheConfigFor(task, kv::Policy::Aerp);
    const auto retention = edram::RetentionModel::paper65nm();

    bench::banner("Table 4: uniform refresh vs 2DRP at matched average "
                  "failure rates (3-seed averages)");
    std::printf("baseline (fault-free) PPL = %.3f\n\n",
                bench_ctx.baselinePerplexity());

    Table t({"operating point", "uniform interval", "avg fail rate",
             "PPL uniform", "PPL 2DRP", "Agr uniform", "Agr 2DRP"});

    // Three operating points around the paper's deployment set; the
    // scale factors stress the policy from mild to aggressive rates
    // (the substrate is smaller, so the sweep extends further).
    const double scales[] = {1.0, 4.0, 16.0};
    const char *names[] = {"deployed", "4x relaxed", "16x relaxed"};
    for (int i = 0; i < 3; ++i) {
        const auto intervals =
            edram::RefreshIntervals::paper2drp().scaled(scales[i]);
        const edram::TwoDRefreshPolicy policy(intervals, retention);
        const Time uni = policy.isoAccuracyUniformInterval();
        const double rate = policy.averageFailureRate();

        const auto ru = bench_ctx.run(
            cfg, [&](std::uint64_t seed) {
                return std::make_unique<edram::RefreshFaultModel>(
                    edram::RefreshFaultModel::uniformRate(rate, seed));
            });
        const auto rt = bench_ctx.run(
            cfg, [&](std::uint64_t seed) {
                return std::make_unique<edram::RefreshFaultModel>(
                    policy, seed);
            });
        t.addRow({names[i], Table::num(uni.us(), 0) + " us",
                  Table::num(rate, 5), Table::num(ru.perplexity, 3),
                  Table::num(rt.perplexity, 3),
                  Table::pct(ru.agreementTop1),
                  Table::pct(rt.agreementTop1)});
    }
    t.print();
    bench::note("paper Table 4: 2DRP beats the iso-rate uniform policy "
                "at every operating point because it concentrates the "
                "failure budget on LSBs of low-score tokens");
    return 0;
}
