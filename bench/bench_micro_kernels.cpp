/**
 * @file
 * Google-benchmark microbenches for the hot simulator kernels: the
 * cycle-level systolic array, the systolic evictor (Section 8.1.4
 * overhead study), Softermax, the eDRAM fault injector and the
 * managed KV cache datapath.
 */

#include <benchmark/benchmark.h>

#include "accel/sfu.hpp"
#include "accel/systolic_array.hpp"
#include "accel/systolic_evictor.hpp"
#include "common/rng.hpp"
#include "edram/fault_model.hpp"
#include "kvcache/managed_kv_cache.hpp"

using namespace kelle;

namespace {

accel::Int8Matrix
randomI8(std::size_t r, std::size_t c, Rng &rng)
{
    accel::Int8Matrix m(r, c);
    for (auto &v : m.data)
        v = static_cast<std::int8_t>(
            static_cast<int>(rng.below(255)) - 127);
    return m;
}

void
BM_SystolicArrayTile(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    accel::SystolicArray rsa(32, 32);
    const auto a = randomI8(dim, 32, rng);
    const auto w = randomI8(32, 32, rng);
    rsa.loadWeights(w);
    for (auto _ : state) {
        auto out = rsa.stream(a);
        benchmark::DoNotOptimize(out.data.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            dim * 32 * 32);
}
BENCHMARK(BM_SystolicArrayTile)->Arg(32)->Arg(128)->Arg(512);

void
BM_SystolicEvictorPass(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(2);
    std::vector<float> scores(n);
    for (auto &v : scores)
        v = static_cast<float>(rng.uniform(0.0, 100.0));
    accel::SystolicEvictor se(n);
    se.loadScores(scores);
    for (auto _ : state) {
        se.beginPass();
        for (std::size_t i = 0; i < n; ++i)
            se.onOutput(i, 0, static_cast<std::int32_t>(i % 7), 0);
        benchmark::DoNotOptimize(se.finalize());
    }
}
BENCHMARK(BM_SystolicEvictorPass)->Arg(128)->Arg(2048);

void
BM_SoftwareArgminEviction(benchmark::State &state)
{
    // The software alternative the systolic evictor replaces:
    // re-scan all importance scores per step (Section 8.1.4).
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(3);
    std::vector<float> scores(n);
    for (auto &v : scores)
        v = static_cast<float>(rng.uniform(0.0, 100.0));
    for (auto _ : state) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < n; ++i)
            if (scores[i] < scores[best])
                best = i;
        benchmark::DoNotOptimize(best);
    }
}
BENCHMARK(BM_SoftwareArgminEviction)->Arg(128)->Arg(2048);

void
BM_Softermax(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    accel::Sfu sfu;
    Rng rng(4);
    std::vector<float> base(n);
    for (auto &v : base)
        v = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        std::vector<float> x = base;
        sfu.softermax(x);
        benchmark::DoNotOptimize(x.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Softermax)->Arg(128)->Arg(2048);

void
BM_FaultInjection(benchmark::State &state)
{
    const double rate = 1e-3;
    auto inj = edram::RefreshFaultModel::uniformRate(rate, 5);
    std::vector<std::uint16_t> words(
        static_cast<std::size_t>(state.range(0)), 0x1234);
    kv::FaultContext ctx{true};
    for (auto _ : state) {
        inj.corrupt(words, ctx);
        benchmark::DoNotOptimize(words.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0) * 16);
}
BENCHMARK(BM_FaultInjection)->Arg(1024)->Arg(65536);

void
BM_KvCacheAppendGather(benchmark::State &state)
{
    const std::size_t heads = 8, hd = 16, d = 128;
    auto cfg = kv::makeAerpConfig(static_cast<std::size_t>(state.range(0)),
                                  4, 16);
    cfg.recompute = false;
    kv::ManagedKvCache cache(cfg, 1, heads, hd, d);
    Rng rng(6);
    std::vector<float> k(heads * hd), v(heads * hd), x(d);
    for (auto &f : k)
        f = static_cast<float>(rng.gaussian());
    for (auto &f : v)
        f = static_cast<float>(rng.gaussian());
    std::int64_t pos = 0;
    for (auto _ : state) {
        cache.append(0, pos++, k, v, x);
        auto g = cache.gather(0, pos % heads);
        benchmark::DoNotOptimize(g.k.data());
    }
}
BENCHMARK(BM_KvCacheAppendGather)->Arg(64)->Arg(512);

} // namespace

BENCHMARK_MAIN();
