/**
 * @file
 * Table 8 + Section 8.3.7 reproduction:
 *  - energy efficiency across eDRAM retention times (2DRP interval
 *    sets scaled so the average interval is 1050 / 525 / 262 / 131 us)
 *    on TriviaQA and PG19 with LLaMA3.2-3B;
 *  - the halved-eDRAM-bandwidth ablation (128 GB/s, same capacity).
 */

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace kelle;
using namespace kelle::accel;

int
main()
{
    const auto mc = model::llama32_3b();

    bench::banner("Table 8: energy efficiency across average refresh "
                  "intervals (LLaMA3.2-3B, batch 16)");
    Table t({"avg interval (us)", "TriviaQA", "PG19"});
    const Time base_avg =
        edram::RefreshIntervals::paper2drp().averageInterval();
    for (double target_us : {1050.0, 525.0, 262.0, 131.0}) {
        std::vector<std::string> row = {Table::num(target_us, 0)};
        for (const auto &task : {sim::triviaQa(), sim::pg19()}) {
            const auto w = sim::makeWorkload(task, mc, 16);
            const auto base = simulate(originalSramSystem(), w);
            auto sys = kelleEdramSystem(task.budget);
            sys.refresh.intervals =
                edram::RefreshIntervals::paper2drp().scaled(
                    target_us / base_avg.us());
            const auto r = simulate(sys, w);
            row.push_back(
                Table::mult(compare(base, r).energyEfficiency));
        }
        t.addRow(row);
    }
    t.print();
    bench::note("paper Table 8: 3.91x -> 3.06x (TriviaQA) and 8.07x -> "
                "6.05x (PG19) as retention shrinks 1050 -> 131 us; "
                "AERP keeps refresh a small fraction of total energy");

    // ---- Section 8.3.7: halved eDRAM bandwidth ------------------------
    bench::banner("Section 8.3.7: halved eDRAM bandwidth (128 GB/s, "
                  "same 4 MB capacity), LLaMA2-7B");
    Table b({"task", "vs Original+SRAM", "vs AERP+SRAM"});
    for (const auto &task : {sim::pg19(), sim::triviaQa()}) {
        const auto w = sim::makeWorkload(task, model::llama2_7b(), 16);
        const auto base = simulate(originalSramSystem(), w);
        const auto aerp = simulate(aerpSramSystem(task.budget), w);

        auto sys = kelleEdramSystem(task.budget);
        sys.tech.kvMemory =
            mem::edram(Bytes::mib(4), Bandwidth::gibPerSec(128));
        sys.tech.kvEdram.totalBandwidth = Bandwidth::gibPerSec(128);
        sys.tech.kvEdram.banksPerLane = 4; // half the banks
        const auto r = simulate(sys, w);
        b.addRow({task.name,
                  Table::mult(compare(base, r).energyEfficiency),
                  Table::mult(compare(aerp, r).energyEfficiency)});
    }
    b.print();
    bench::note("paper: 6.31x / 5.42x over Original+SRAM and 1.47x / "
                "1.35x over AERP+SRAM at half bandwidth — capacity "
                "matters more than bandwidth");
    return 0;
}
