/**
 * @file
 * Table 1 reproduction: 65 nm, 4 MB SRAM vs eDRAM characteristics
 * (area, access latency, access energy, leakage, refresh energy,
 * retention time) as embedded in the technology models.
 */

#include "bench_util.hpp"
#include "common/table.hpp"
#include "edram/edram_array.hpp"
#include "memory/memory_model.hpp"

using namespace kelle;

int
main()
{
    bench::banner("Table 1: SRAM vs eDRAM comparison (65 nm, 4 MB)");

    const auto sram = mem::sram(Bytes::mib(4), Bandwidth::gibPerSec(128));
    const auto edram =
        mem::edram(Bytes::mib(4), Bandwidth::gibPerSec(256));
    edram::EdramArrayConfig earr;

    Table t({"", "Area", "Access Latency", "Access Energy",
             "Leakage Power", "Refresh Energy", "Retention Time"});
    t.addRow({"SRAM", Table::num(sram.area().inMm2(), 1) + " mm^2",
              Table::num(sram.accessLatency().ns(), 1) + " ns",
              Table::num(sram.accessEnergy().pjPerByte(), 1) + " pJ/B",
              Table::num(sram.leakage().mw(), 0) + " mW", "NA", "NA"});
    const double refresh_mj =
        earr.refreshEnergy.value * Bytes::mib(4).b() * 1e3;
    t.addRow({"eDRAM", Table::num(edram.area().inMm2(), 1) + " mm^2",
              Table::num(edram.accessLatency().ns(), 1) + " ns",
              Table::num(edram.accessEnergy().pjPerByte(), 1) + " pJ/B",
              Table::num(edram.leakage().mw(), 0) + " mW",
              Table::num(refresh_mj, 2) + " mJ", "45 us"});
    t.print();

    bench::note("paper Table 1: SRAM 7.3 mm^2 / 2.6 ns / 185.9 pJ/B / "
                "415 mW; eDRAM 3.2 mm^2 / 1.9 ns / 84.8 pJ/B / 154 mW / "
                "1.14 mJ / 45 us");

    Table density({"metric", "SRAM", "eDRAM", "ratio"});
    density.addRow({"area @4MB (mm^2)",
                    Table::num(sram.area().inMm2(), 2),
                    Table::num(edram.area().inMm2(), 2),
                    Table::mult(sram.area() / edram.area())});
    density.addRow({"leakage (mW)", Table::num(sram.leakage().mw(), 0),
                    Table::num(edram.leakage().mw(), 0),
                    Table::mult(sram.leakage().w() / edram.leakage().w())});
    density.print("\ndensity / leakage advantages (Sections 1, 2.3):");
    bench::note("paper: >2x density, ~3.5x leakage (vs 2.7x from the "
                "Destiny-characterized Table 1 values embedded here)");
    return 0;
}
