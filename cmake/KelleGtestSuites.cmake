# Per-suite ctest registration for GoogleTest binaries.
#
# `gtest_discover_tests` registers one ctest entry per *case*, which
# maximizes sharding but costs one process spawn per case (265+ spawns
# for the fast tier, each paying sanitizer start-up under ASan).
# `kelle_discover_suite_tests` registers one ctest entry per *suite*
# instead: each entry runs `binary --gtest_filter=Suite.*`, so whole
# suites shard across `ctest -j` jobs with an order-of-magnitude fewer
# processes — the right granularity for sim-scale suites (test_cluster)
# and sanitizer runs.
#
# Like GoogleTest's own discovery, registration happens at build time:
# a file-level custom command (target `<target>_suite_discovery`, part
# of ALL) lists the binary's tests and writes an add_test() script per
# suite, regenerating whenever the binary relinks — and also when the
# script is missing, e.g. after enabling the option on an already-built
# tree where the binary itself is up to date. ctest pulls the script in
# through TEST_INCLUDE_FILES via a configure-time wrapper that fails
# with a clear message if the build step has not run yet.
#
#   kelle_discover_suite_tests(<target> [SLOW_SUITES <regex>])
#
# Suites matching SLOW_SUITES are registered with LABELS slow when
# KELLE_TEST_SLOW is ON and omitted entirely otherwise, mirroring the
# slow-tier split gtest_discover_tests(TEST_FILTER ...) implements.

set(_KELLE_GTEST_SUITE_DISCOVER_SCRIPT
    "${CMAKE_CURRENT_LIST_DIR}/KelleGtestSuiteDiscover.cmake")

function(kelle_discover_suite_tests TARGET)
    cmake_parse_arguments(ARG "" "SLOW_SUITES" "" ${ARGN})
    set(ctest_file
        "${CMAKE_CURRENT_BINARY_DIR}/${TARGET}_suite_tests.cmake")
    set(include_file
        "${CMAKE_CURRENT_BINARY_DIR}/${TARGET}_suite_include.cmake")
    file(WRITE "${include_file}"
"if(EXISTS \"${ctest_file}\")
    include(\"${ctest_file}\")
else()
    # Not built yet. Register a failing placeholder instead of
    # aborting ctest outright: a full run still fails loudly, but a
    # scoped run (ctest -R over targets that WERE built, e.g. the
    # TSan job's three threaded suites) is not held hostage by
    # binaries it never asked for.
    add_test(${TARGET}_suites_not_discovered
        \"${CMAKE_COMMAND}\" -E echo
        \"suite list of ${TARGET} not generated yet - run the build \"
        \"(cmake --build <dir> --target ${TARGET}_suite_discovery) \"
        \"before ctest\")
    set_tests_properties(${TARGET}_suites_not_discovered PROPERTIES
        PASS_REGULAR_EXPRESSION \"unreachable: this test always fails\")
endif()
")
    add_custom_command(
        OUTPUT "${ctest_file}"
        COMMAND "${CMAKE_COMMAND}"
            -D "TEST_TARGET=${TARGET}"
            -D "TEST_EXECUTABLE=$<TARGET_FILE:${TARGET}>"
            -D "CTEST_FILE=${ctest_file}"
            -D "SLOW_SUITES=${ARG_SLOW_SUITES}"
            -D "SLOW_ENABLED=${KELLE_TEST_SLOW}"
            -P "${_KELLE_GTEST_SUITE_DISCOVER_SCRIPT}"
        DEPENDS ${TARGET} "${_KELLE_GTEST_SUITE_DISCOVER_SCRIPT}"
        WORKING_DIRECTORY "${CMAKE_CURRENT_BINARY_DIR}"
        COMMENT "Discovering test suites in ${TARGET}"
        VERBATIM)
    add_custom_target(${TARGET}_suite_discovery ALL
        DEPENDS "${ctest_file}")
    set_property(DIRECTORY APPEND PROPERTY TEST_INCLUDE_FILES
        "${include_file}")
endfunction()
