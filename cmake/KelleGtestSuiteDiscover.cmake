# Post-build helper of KelleGtestSuites.cmake: list TEST_EXECUTABLE's
# GoogleTest suites and write one add_test() per suite into CTEST_FILE.
# Runs in script mode (cmake -P) with TEST_TARGET, TEST_EXECUTABLE,
# CTEST_FILE, SLOW_SUITES (regex, may be empty) and SLOW_ENABLED
# defined on the command line.

cmake_minimum_required(VERSION 3.22) # CMP0057 NEW: if(IN_LIST)

execute_process(
    COMMAND "${TEST_EXECUTABLE}" --gtest_list_tests
    OUTPUT_VARIABLE output
    RESULT_VARIABLE result
    ERROR_VARIABLE error)
if(NOT result EQUAL 0)
    message(FATAL_ERROR
        "listing tests of ${TEST_TARGET} failed (${result}): ${error}")
endif()

string(REPLACE "\n" ";" lines "${output}")
set(script "")
set(seen "")
foreach(line IN LISTS lines)
    # Suite headers are unindented "Suite." lines (test cases are
    # indented); a trailing "  # TypeParam = ..." comment may follow.
    if(line MATCHES "^([A-Za-z_0-9/]+)\\.")
        set(suite "${CMAKE_MATCH_1}")
        if(suite IN_LIST seen)
            continue()
        endif()
        list(APPEND seen "${suite}")
        set(slow FALSE)
        if(SLOW_SUITES AND suite MATCHES "${SLOW_SUITES}")
            set(slow TRUE)
        endif()
        if(slow AND NOT SLOW_ENABLED)
            continue() # slow tier not registered in this build
        endif()
        set(name "${TEST_TARGET}.${suite}")
        string(APPEND script
            "add_test(\"${name}\" \"${TEST_EXECUTABLE}\""
            " \"--gtest_filter=${suite}.*\")\n")
        if(slow)
            string(APPEND script
                "set_tests_properties(\"${name}\" PROPERTIES"
                " LABELS slow)\n")
        endif()
    endif()
endforeach()

if(script STREQUAL "")
    message(FATAL_ERROR "no test suites found in ${TEST_TARGET}")
endif()
file(WRITE "${CTEST_FILE}" "${script}")
