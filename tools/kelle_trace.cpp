/**
 * @file
 * kelle_trace: offline analytics over the Chrome trace-event JSON the
 * engines record (`--trace-out`). Three subcommands:
 *
 *   kelle_trace report TRACE
 *       Parse stats, per-device utilization, the aggregate latency
 *       waterfall and the SLO miss-cause breakdown.
 *
 *   kelle_trace waterfall TRACE [--top K]
 *       The K worst requests by end-to-end latency, each with its
 *       full component decomposition (the per-request critical path).
 *
 *   kelle_trace diff A B
 *       Bitwise A/B comparison. Identical traces exit 0 with one
 *       line; different traces exit 1 with the first divergent line
 *       and an event-count delta per (phase, name).
 *
 * Every output byte is a pure function of the input trace bytes
 * (fixed printf formats, index-ordered iteration), so reports diff
 * cleanly across runs and the threads-1-vs-4 CI smoke can assert
 * byte-identical output.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "obs/trace_reader.hpp"

namespace {

using kelle::Table;
using kelle::obs::kLatencyComponentCount;
using kelle::obs::kMissCauseCount;
using kelle::obs::LatencyComponent;
using kelle::obs::MissCause;
using kelle::obs::RawTraceEvent;
using kelle::obs::RequestLife;
using kelle::obs::TraceReader;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: kelle_trace report TRACE\n"
        "       kelle_trace waterfall TRACE [--top K]\n"
        "       kelle_trace diff A B\n");
    return 2;
}

bool
slurp(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    char buf[1 << 16];
    std::size_t n = 0;
    out.clear();
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return true;
}

bool
load(const std::string &path, TraceReader &reader)
{
    std::string bytes;
    if (!slurp(path, bytes)) {
        std::fprintf(stderr, "kelle_trace: cannot read %s\n",
                     path.c_str());
        return false;
    }
    if (!reader.parse(bytes)) {
        std::fprintf(stderr,
                     "kelle_trace: %s is not a kelle trace "
                     "(header/footer mismatch)\n",
                     path.c_str());
        return false;
    }
    return true;
}

std::string
secs(double us)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", us / 1e6);
    return buf;
}

void
printMissCauses(const std::size_t counts[kMissCauseCount],
                std::size_t terminal)
{
    Table t({"cause", "requests", "share"});
    for (std::size_t i = 0; i < kMissCauseCount; ++i) {
        // The device_fault row exists only on fault traces; skipping
        // it at zero keeps faults-off reports byte-identical to the
        // pre-fault format.
        if (static_cast<MissCause>(i) == MissCause::DeviceFault &&
            counts[i] == 0)
            continue;
        const double share =
            terminal > 0
                ? static_cast<double>(counts[i]) /
                      static_cast<double>(terminal)
                : 0.0;
        t.addRow({kelle::obs::toString(static_cast<MissCause>(i)),
                  std::to_string(counts[i]), Table::pct(share)});
    }
    t.print("Miss causes (dominant, per terminal request)");
}

int
cmdReport(const std::string &path)
{
    TraceReader reader;
    if (!load(path, reader))
        return 1;
    const TraceReader::Stats &st = reader.stats();
    std::printf("trace: %s\n", path.c_str());
    std::printf("events: %zu (unknown %zu, malformed %zu, "
                "batch mismatches %zu)\n",
                st.events, st.unknown, st.malformed,
                st.batchMismatches);
    // Fault line only on fault traces: faults-off reports keep the
    // pre-fault byte layout.
    if (reader.deviceFaults + reader.deviceRecovers +
            reader.faultEvictions + reader.faultFailures >
        0) {
        std::printf("faults: %zu device faults, %zu recoveries, "
                    "%zu crash evictions, %zu permanent failures\n",
                    reader.deviceFaults, reader.deviceRecovers,
                    reader.faultEvictions, reader.faultFailures);
    }
    std::printf("requests: %zu terminal (%zu completed, %zu "
                "rejected), %zu SLO misses\n\n",
                reader.terminal, reader.completed, reader.rejected,
                reader.misses);

    if (!reader.devices().empty()) {
        Table t({"device", "busy_s", "prefill", "decode", "completed",
                 "rejected", "misses"});
        for (const auto &d : reader.devices()) {
            t.addRow({d.name, secs(d.busyUs),
                      std::to_string(d.prefillSlices),
                      std::to_string(d.decodeSlices),
                      std::to_string(d.completed),
                      std::to_string(d.rejected),
                      std::to_string(d.misses)});
        }
        t.print("Per-device");
    }

    double total = 0.0;
    for (std::size_t i = 0; i < kLatencyComponentCount; ++i)
        total += reader.componentTotalsUs[i];
    Table t({"component", "total_s", "share"});
    for (std::size_t i = 0; i < kLatencyComponentCount; ++i) {
        const double us = reader.componentTotalsUs[i];
        t.addRow({kelle::obs::toString(static_cast<LatencyComponent>(i)),
                  secs(us), Table::pct(total > 0.0 ? us / total : 0.0)});
    }
    t.print("Latency waterfall (summed over terminal requests)");

    printMissCauses(reader.missCounts, reader.terminal);
    return 0;
}

int
cmdWaterfall(const std::string &path, std::size_t top)
{
    TraceReader reader;
    if (!load(path, reader))
        return 1;

    std::vector<const RequestLife *> worst;
    for (const RequestLife &r : reader.requests())
        if (r.terminal())
            worst.push_back(&r);
    std::sort(worst.begin(), worst.end(),
              [](const RequestLife *a, const RequestLife *b) {
                  if (a->e2eUs != b->e2eUs)
                      return a->e2eUs > b->e2eUs;
                  return a->id < b->id;
              });
    if (worst.size() > top)
        worst.resize(top);

    std::printf("trace: %s\n", path.c_str());
    std::printf("worst %zu of %zu terminal requests by e2e\n\n",
                worst.size(), reader.terminal);
    for (std::size_t k = 0; k < worst.size(); ++k) {
        const RequestLife &r = *worst[k];
        const char *devName =
            r.device >= 1 && static_cast<std::size_t>(r.device) <=
                                 reader.devices().size()
                ? reader.devices()[static_cast<std::size_t>(r.device) -
                                   1]
                      .name.c_str()
                : "?";
        std::printf("#%zu req %llu (%s) on %s: e2e %s s, ttft %s s, "
                    "%s, cause %s\n",
                    k + 1, static_cast<unsigned long long>(r.id),
                    r.task.c_str(), devName, secs(r.e2eUs).c_str(),
                    secs(r.ttftUs).c_str(),
                    r.rejected ? "rejected" : "completed",
                    kelle::obs::toString(r.cause));
        for (std::size_t i = 0; i < kLatencyComponentCount; ++i) {
            const double us = r.componentsUs[i];
            std::printf("    %-18s %s s  %s\n",
                        kelle::obs::toString(
                            static_cast<LatencyComponent>(i)),
                        secs(us).c_str(),
                        Table::pct(r.e2eUs > 0.0 ? us / r.e2eUs : 0.0)
                            .c_str());
        }
        std::printf("\n");
    }
    return 0;
}

int
cmdDiff(const std::string &pathA, const std::string &pathB)
{
    std::string a;
    std::string b;
    if (!slurp(pathA, a)) {
        std::fprintf(stderr, "kelle_trace: cannot read %s\n",
                     pathA.c_str());
        return 1;
    }
    if (!slurp(pathB, b)) {
        std::fprintf(stderr, "kelle_trace: cannot read %s\n",
                     pathB.c_str());
        return 1;
    }
    if (a == b) {
        std::printf("identical: %s == %s (%zu bytes)\n",
                    pathA.c_str(), pathB.c_str(), a.size());
        return 0;
    }

    std::printf("different: %s (%zu bytes) vs %s (%zu bytes)\n",
                pathA.c_str(), a.size(), pathB.c_str(), b.size());

    // First divergent line, 1-based.
    std::size_t line = 1;
    std::size_t i = 0;
    const std::size_t n = std::min(a.size(), b.size());
    while (i < n && a[i] == b[i]) {
        if (a[i] == '\n')
            ++line;
        ++i;
    }
    std::printf("first difference at line %zu (byte %zu)\n", line, i);

    // Event-count delta per (phase, name): which streams changed.
    TraceReader ra;
    TraceReader rb;
    if (ra.parse(a) && rb.parse(b)) {
        std::map<std::string, long long> counts;
        for (const RawTraceEvent &e : ra.events())
            ++counts[std::string(1, e.ph) + " " + e.name];
        for (const RawTraceEvent &e : rb.events())
            --counts[std::string(1, e.ph) + " " + e.name];
        Table t({"event", "A-B"});
        for (const auto &kv : counts)
            if (kv.second != 0)
                t.addRow({kv.first, std::to_string(kv.second)});
        t.print("Event-count deltas (ph name)");
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage();
    const std::string &cmd = args[0];
    if (cmd == "report" && args.size() == 2)
        return cmdReport(args[1]);
    if (cmd == "waterfall" && args.size() >= 2) {
        std::size_t top = 5;
        for (std::size_t i = 2; i < args.size(); ++i) {
            if (args[i] == "--top" && i + 1 < args.size()) {
                top = static_cast<std::size_t>(
                    std::strtoull(args[++i].c_str(), nullptr, 10));
            } else {
                return usage();
            }
        }
        return cmdWaterfall(args[1], top);
    }
    if (cmd == "diff" && args.size() == 3)
        return cmdDiff(args[1], args[2]);
    return usage();
}
